//! Cross-validation of the interval abstraction against the explicit
//! engine (see `docs/SYMBOLIC.md`): on randomised free processes and
//! 2–3-thread products,
//!
//! * interval-domain verdicts agree with explicit verdicts wherever the
//!   explicit engine terminates (same verdict kind, same violation
//!   instant, same explored depth);
//! * every counterexample found abstractly replays concretely (the
//!   strengthen-only gate is not just an internal check — the reported
//!   artifacts reproduce);
//! * a system `Proved` by widening has no violation within 4× the bound
//!   the explicit engine would have used.

use proptest::prelude::*;

use polyverify::{
    Domain, InputSpace, PortLink, ProductComponent, ProductSystem, ProductVerifier, Property,
    Verdict, VerificationOutcome, Verifier, VerifyOptions,
};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// A streak counter (observable, drives the alarm) plus an unbounded
/// monotone step counter (`total`) that no property reads — the invisible
/// counter is what the interval domain widens away.
fn mixed_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("mixed");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("streak", ValueType::Integer);
    b.local("total", ValueType::Integer);
    let prev = Expr::delay(Expr::var("streak"), Value::Int(0));
    b.define(
        "streak",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("r")),
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var("d")),
                Expr::int(0),
            ),
        ),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define("Alarm", Expr::ge(Expr::var("streak"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "streak", "total", "Alarm"]);
    b.build().unwrap()
}

/// A system whose alarm is unsatisfiable while an unbounded monotone
/// counter keeps the concrete space from ever closing: the interval domain
/// must prove it, the concrete engine can only pass it bounded.
fn unreachable_alarm() -> Process {
    let mut b = ProcessBuilder::new("closed");
    b.input("d", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("total", ValueType::Integer);
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define(
        "Alarm",
        Expr::and(Expr::var("d"), Expr::not(Expr::var("d"))),
    );
    b.synchronize(&["d", "total", "Alarm"]);
    b.build().unwrap()
}

/// What must agree between the two domains: the verdict kind, the instant
/// of a violation and the explored depth — not the state counts (the
/// abstraction merges states by design) and not the byte-identical
/// counterexample path (both replay, but through different interners).
fn verdict_shape(outcome: &VerificationOutcome) -> Vec<String> {
    outcome
        .verdicts
        .iter()
        .map(|v| match &v.verdict {
            Verdict::Proved => "proved".to_string(),
            Verdict::PassedBounded { depth } => format!("passed-bounded@{depth}"),
            Verdict::Violated(cex) => format!("violated@{}", cex.violation_instant),
        })
        .collect()
}

proptest! {
    /// Wherever the explicit engine terminates (here: at a depth bound),
    /// the interval domain reaches the same verdicts at the same instants,
    /// while genuinely merging states.
    #[test]
    fn interval_verdicts_agree_with_explicit(
        threshold in 1i64..=5,
        depth in 3usize..=6,
    ) {
        let process = mixed_counter(threshold);
        let properties = [Property::NeverRaised("*Alarm*".into())];
        let explicit = Verifier::new(
            &process,
            VerifyOptions::default().with_depth_bound(depth),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        let interval = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_depth_bound(depth)
                .with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        prop_assert_eq!(verdict_shape(&explicit), verdict_shape(&interval));
        prop_assert!(interval.stats.states <= explicit.stats.states);
    }

    /// Every counterexample the abstract engine reports replays in the
    /// concrete simulator — the reported artifact itself reproduces, not
    /// just an internal re-check.
    #[test]
    fn abstract_counterexamples_replay_concretely(
        threshold in 1i64..=3,
        project in any::<bool>(),
    ) {
        let process = mixed_counter(threshold);
        let outcome = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_depth_bound(threshold as usize + 2)
                .with_domain(Domain::Interval)
                .with_project_counters(project),
        )
        .unwrap()
        .verify(&InputSpace::Free, &[Property::NeverRaised("*Alarm*".into())])
        .unwrap();
        let mut violations = 0usize;
        for (_, cex) in outcome.violations() {
            violations += 1;
            let report = cex.replay(&process).unwrap();
            prop_assert!(report.reproduced, "{}", report.detail);
        }
        // The threshold is reachable within the bound, so the alarm fires.
        prop_assert!(violations > 0);
        prop_assert_eq!(outcome.stats.reconcretized, violations);
    }

    /// A `Proved`-by-widening verdict is checked against a concrete run at
    /// 4× the bound the explicit engine would otherwise use: no violation
    /// may hide below it.
    #[test]
    fn proved_by_widening_has_no_violation_within_4x_bound(
        explicit_bound in 2usize..=6,
        project in any::<bool>(),
    ) {
        let process = unreachable_alarm();
        let properties = [Property::NeverRaised("*Alarm*".into())];
        let proved = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_domain(Domain::Interval)
                .with_project_counters(project),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        prop_assert!(proved.all_proved(), "{}", proved.summary());
        prop_assert!(!proved.stats.truncated);
        let concrete = Verifier::new(
            &process,
            VerifyOptions::default().with_depth_bound(explicit_bound * 4),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        prop_assert_eq!(concrete.violations().count(), 0);
    }

    /// Products: per-component invisible counters widen inside the joint
    /// memory, and the joint verdicts agree with the concrete product
    /// wherever it terminates.
    #[test]
    fn product_interval_verdicts_agree_with_explicit(
        component_count in 2usize..=3,
        horizon in 4usize..=6,
        threshold in 1i64..=4,
        periods in prop::collection::vec(1usize..=3, 3..4),
        latency in 0usize..=2,
    ) {
        let system = pipeline_system(component_count, horizon, threshold, &periods, latency);
        let properties = [Property::NeverRaised("*Alarm*".into())];
        let explicit = ProductVerifier::new(
            system.clone(),
            VerifyOptions::default().with_depth_bound(horizon * 2),
        )
        .unwrap()
        .verify(&properties)
        .unwrap();
        let interval = ProductVerifier::new(
            system,
            VerifyOptions::default()
                .with_depth_bound(horizon * 2)
                .with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(&properties)
        .unwrap();
        prop_assert_eq!(verdict_shape(&explicit), verdict_shape(&interval));
        prop_assert!(interval.stats.states <= explicit.stats.states);
    }
}

/// The PR 6 pipeline generator with an extra invisible `total` counter per
/// stage: event-counting stages chained by latency-`latency` links, stage
/// `i` dispatching every `periods[i]` ticks and alarming after `threshold`
/// received events. The `seen` counter stays concrete (the alarm reads
/// it); `total` is widened.
fn pipeline_system(
    count: usize,
    horizon: usize,
    threshold: i64,
    periods: &[usize],
    latency: usize,
) -> ProductSystem {
    fn stage(name: &str, threshold: i64) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        b.local("total", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define(
            "total",
            Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(threshold)));
        b.synchronize(&[
            "Dispatch",
            "out_output_time",
            "in_in",
            "seen",
            "total",
            "Alarm",
        ]);
        b.build().unwrap()
    }
    let mut components = Vec::new();
    for (i, period) in periods.iter().take(count).enumerate() {
        let period = (*period).max(1);
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % period == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % period == period - 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name: format!("s{i}"),
            process: stage(&format!("stage{i}"), threshold),
            schedule,
        });
    }
    let links = (1..count)
        .map(|i| PortLink {
            name: format!("l{}{}", i - 1, i),
            source: format!("s{}", i - 1),
            source_signal: "out_output_time".into(),
            target: format!("s{i}"),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency,
        })
        .collect();
    ProductSystem::new(components, links).unwrap()
}
