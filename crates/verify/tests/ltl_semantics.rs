//! Cross-validation of the compiled LTL monitors against the brute-force
//! reference semantics, plus the desugaring regression: the built-in
//! property shapes and their past-time LTL desugarings must yield
//! identical verdicts and counterexample depths — on random processes and
//! on the paper's case study.

use proptest::prelude::*;

use polyverify::ltl::{eval, first_violation, Formula, LtlProperty};
use polyverify::{InputSpace, LtlMonitor, Property, Verdict, Verifier, VerifyOptions};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::{Trace, TraceStep};
use signal_moc::value::{Value, ValueType};

/// Deterministic splitmix64 stream used to derive random formulas and
/// traces from one proptest-drawn seed.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const SIGNALS: [&str; 3] = ["a", "b", "c"];

/// Draws a random formula of bounded depth over the three test signals,
/// covering every operator of the language.
fn random_formula(stream: &mut Stream, depth: u32) -> Formula {
    let leaf = depth == 0;
    let choice = if leaf {
        stream.below(4)
    } else {
        4 + stream.below(9)
    };
    let signal = |stream: &mut Stream| SIGNALS[stream.below(3) as usize].to_string();
    match choice {
        0 => Formula::Const(stream.below(2) == 0),
        1 => Formula::signal(signal(stream)),
        2 => Formula::present(signal(stream)),
        3 => Formula::raised(format!("*{}*", signal(stream))),
        4 => Formula::not(random_formula(stream, depth - 1)),
        5 => Formula::and(
            random_formula(stream, depth - 1),
            random_formula(stream, depth - 1),
        ),
        6 => Formula::or(
            random_formula(stream, depth - 1),
            random_formula(stream, depth - 1),
        ),
        7 => Formula::implies(
            random_formula(stream, depth - 1),
            random_formula(stream, depth - 1),
        ),
        8 => Formula::previously(random_formula(stream, depth - 1)),
        9 => Formula::once(random_formula(stream, depth - 1)),
        10 => Formula::historically(random_formula(stream, depth - 1)),
        11 => Formula::since(
            random_formula(stream, depth - 1),
            random_formula(stream, depth - 1),
        ),
        _ => Formula::within(
            random_formula(stream, depth - 1),
            random_formula(stream, depth - 1),
            stream.below(4) as u32,
        ),
    }
}

/// Draws a random trace: 1..=8 instants, each signal independently absent,
/// present-false or present-true.
fn random_trace(stream: &mut Stream) -> Vec<TraceStep> {
    let len = 1 + stream.below(8) as usize;
    (0..len)
        .map(|_| {
            let mut step = TraceStep::new();
            for name in SIGNALS {
                match stream.below(3) {
                    0 => {}
                    1 => {
                        step.set(name, Value::Bool(false));
                    }
                    _ => {
                        step.set(name, Value::Bool(true));
                    }
                }
            }
            step
        })
        .collect()
}

proptest! {
    /// The compiled monitor and the brute-force reference evaluator agree
    /// on the truth value of every random formula at every instant of
    /// every random trace.
    #[test]
    fn monitor_agrees_with_reference_semantics(seed in 0u64..u64::MAX, depth in 1u32..4) {
        let mut stream = Stream(seed);
        let formula = random_formula(&mut stream, depth);
        let trace = random_trace(&mut stream);
        let monitor = LtlMonitor::new(formula.clone());
        let mut registers = monitor.initial();
        for (t, step) in trace.iter().enumerate() {
            let stepped = monitor.step(&mut registers, step).holds;
            let reference = eval(&formula, &trace, t);
            prop_assert_eq!(
                stepped,
                reference,
                "formula `{}` disagrees at instant {} of {:?}",
                formula,
                t,
                trace
            );
        }
    }

    /// Rendering a random formula and re-parsing it yields the same tree,
    /// so counterexample reports and saved property lists round-trip.
    #[test]
    fn random_formulas_round_trip_through_the_parser(seed in 0u64..u64::MAX, depth in 1u32..4) {
        let mut stream = Stream(seed);
        let formula = random_formula(&mut stream, depth);
        let rendered = format!("always {formula}");
        let reparsed = LtlProperty::parse(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}`:\n{e}"));
        prop_assert_eq!(reparsed.invariant(), &formula, "{}", rendered);
    }

    /// The first violation found by stepping the monitor matches the
    /// reference `first_violation`, which is what counterexample depths
    /// are made of.
    #[test]
    fn first_violations_agree(seed in 0u64..u64::MAX) {
        let mut stream = Stream(seed);
        let formula = random_formula(&mut stream, 3);
        let trace = random_trace(&mut stream);
        let monitor = LtlMonitor::new(formula.clone());
        let mut registers = monitor.initial();
        let mut by_monitor = None;
        for (t, step) in trace.iter().enumerate() {
            if !monitor.step(&mut registers, step).holds {
                by_monitor = Some(t);
                break;
            }
        }
        prop_assert_eq!(by_monitor, first_violation(&formula, &trace));
    }
}

/// Deadline/Resume alarm watcher (same family as the explorer's unit
/// tests): finite state, so free exploration closes.
fn watcher() -> Process {
    let mut b = ProcessBuilder::new("watcher");
    b.input("Deadline", ValueType::Boolean);
    b.input("Resume", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.define(
        "Alarm",
        Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))),
    );
    b.synchronize(&["Deadline", "Resume", "Alarm"]);
    b.build().unwrap()
}

/// Verifies `process` twice — once with the built-in properties, once with
/// their LTL desugarings — and asserts identical verdict kinds, violation
/// depths, counterexample input traces and exploration stats.
fn assert_desugarings_match(process: &Process, space: &InputSpace, built_ins: &[Property]) {
    let desugared: Vec<Property> = built_ins
        .iter()
        .map(|p| {
            Property::Ltl(
                p.ltl()
                    .unwrap_or_else(|| panic!("{} has no desugaring", p.name())),
            )
        })
        .collect();
    let options = || VerifyOptions::default().with_depth_bound(24);
    let legacy = Verifier::new(process, options())
        .unwrap()
        .verify(space, built_ins)
        .unwrap();
    let modern = Verifier::new(process, options())
        .unwrap()
        .verify(space, &desugared)
        .unwrap();
    assert_eq!(legacy.stats, modern.stats, "exploration must be identical");
    for (a, b) in legacy.verdicts.iter().zip(&modern.verdicts) {
        match (&a.verdict, &b.verdict) {
            (Verdict::Violated(ca), Verdict::Violated(cb)) => {
                assert_eq!(
                    ca.violation_instant,
                    cb.violation_instant,
                    "{}",
                    a.property.name()
                );
                assert_eq!(ca.inputs, cb.inputs, "{}", a.property.name());
            }
            (va, vb) => assert_eq!(va, vb, "{}", a.property.name()),
        }
    }
}

#[test]
fn built_ins_and_desugarings_agree_on_the_watcher() {
    let process = watcher();
    assert_desugarings_match(
        &process,
        &InputSpace::Free,
        &[
            Property::NeverRaised("*Alarm*".into()),
            Property::BoundedResponse {
                trigger: "Deadline".into(),
                response: "Resume".into(),
                bound: 1,
            },
            Property::EndToEndResponse {
                from: "cLink_sent".into(),
                to: "cLink_consumed".into(),
                bound: 2,
            },
        ],
    );
}

/// Builds the flattened producer thread of the case study together with
/// its scheduled timing trace (the shared `asme2ssme` recipe, so this is
/// exactly what the pipeline verifies).
fn producer_under_schedule(tampered: bool) -> (Process, Trace) {
    use aadl::case_study::producer_consumer_instance;
    use asme2ssme::thread_under_schedule;
    use sched::SchedulingPolicy;

    let instance = producer_consumer_instance().unwrap();
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )
    .unwrap();
    let mut inputs = thread_model.timing_trace(&schedule, 1);
    if tampered {
        polyverify::inject_deadline_overrun(&mut inputs, "").expect("fault injected");
    }
    (thread_model.flat, inputs)
}

/// Regression pinned by the issue: on the case study (healthy and with the
/// injected deadline overrun) the built-in properties and their LTL
/// desugarings produce identical verdicts and counterexample depth.
#[test]
fn built_ins_and_desugarings_agree_on_the_case_study() {
    for tampered in [false, true] {
        let (flat, inputs) = producer_under_schedule(tampered);
        assert_desugarings_match(
            &flat,
            &InputSpace::Scheduled(inputs),
            &[
                Property::NeverRaised("*Alarm*".into()),
                Property::BoundedResponse {
                    trigger: "Deadline".into(),
                    response: "Resume".into(),
                    bound: 8,
                },
            ],
        );
    }
}

/// A user-written LTL property is violated with a counterexample that
/// replays in the simulator — the same independent-confirmation loop the
/// built-ins have.
#[test]
fn user_ltl_counterexamples_replay() {
    let process = watcher();
    let property = Property::parse_ltl("always (Alarm implies previously Deadline)").unwrap();
    let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
    let outcome = verifier
        .verify(&InputSpace::Free, std::slice::from_ref(&property))
        .unwrap();
    let (_, cex) = outcome.violations().next().expect("violation expected");
    // Alarm can fire at the very first instant, where `previously
    // Deadline` is false by definition: minimal depth 0.
    assert_eq!(cex.violation_instant, 0);
    let replay = cex.replay(&process).unwrap();
    assert!(replay.reproduced, "{}", replay.detail);
}

/// Temporal registers enlarge the explored state exactly as declared, and
/// a stateless user property adds no state at all.
#[test]
fn register_footprint_matches_the_formula() {
    let process = watcher();
    let stateless = Property::parse_ltl("never raised(*Alarm*)").unwrap();
    let stateful = Property::parse_ltl("always (Deadline implies once Resume)").unwrap();
    assert_eq!(stateless.monitor().unwrap().register_count(), 0);
    assert_eq!(stateful.monitor().unwrap().register_count(), 1);

    let base = Verifier::new(&process, VerifyOptions::default())
        .unwrap()
        .verify(&InputSpace::Free, &[Property::DeadlockFree])
        .unwrap();
    let with_stateless = Verifier::new(&process, VerifyOptions::default())
        .unwrap()
        .verify(&InputSpace::Free, &[Property::DeadlockFree, stateless])
        .unwrap();
    assert_eq!(base.stats.states, with_stateless.stats.states);
}
