//! Cross-validation of the model checker against the simulator, plus the
//! injected-deadline regression on the paper's case study.
//!
//! The two validation paths of the tool chain — exhaustive state-space
//! exploration (`polyverify`) and bounded co-simulation (`polysim`) — must
//! agree: a property violated by the checker must be reproducible by
//! simulation of the counterexample, and a process on which brute-force
//! simulation over *all* input sequences finds no alarm must verify clean.

use proptest::prelude::*;

use polysim::Simulator;
use polyverify::{inject_deadline_overrun, InputSpace, Property, Verdict, Verifier, VerifyOptions};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::{Trace, TraceStep};
use signal_moc::value::{Value, ValueType};

/// A small family of deadline-miss counters: `misses` counts instants where
/// `d` (deadline) fires without `r` (resume), resets when `r` fires, and the
/// alarm is raised when `misses` reaches `threshold`.
fn miss_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("miss_counter");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("misses", ValueType::Integer);
    let prev = || Expr::delay(Expr::var("misses"), Value::Int(0));
    b.define(
        "misses",
        Expr::default(
            Expr::when(
                Expr::add(prev(), Expr::int(1)),
                Expr::and(Expr::var("d"), Expr::not(Expr::var("r"))),
            ),
            Expr::default(Expr::when(Expr::int(0), Expr::var("r")), prev()),
        ),
    );
    b.define("Alarm", Expr::ge(Expr::var("misses"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "misses", "Alarm"]);
    b.build().unwrap()
}

fn step(d: bool, r: bool) -> TraceStep {
    let mut s = TraceStep::new();
    s.set("d", Value::Bool(d));
    s.set("r", Value::Bool(r));
    s
}

/// Brute force: earliest instant at which any alarm fires, over every input
/// sequence of length `horizon`, by repeated simulation (exercising
/// `Simulator::reset` between runs).
fn earliest_alarm_by_simulation(process: &Process, horizon: usize) -> Option<usize> {
    let mut simulator = Simulator::new(process).unwrap();
    let mut earliest: Option<usize> = None;
    for combo in 0u32..(1 << (2 * horizon)) {
        let inputs: Trace = (0..horizon)
            .map(|t| {
                let bits = (combo >> (2 * t)) & 0b11;
                step(bits & 1 != 0, bits & 2 != 0)
            })
            .collect();
        simulator.reset();
        simulator.run(&inputs).unwrap();
        let alarm_at = simulator.history().iter().position(|s| {
            s.iter()
                .any(|(name, value)| name.contains("Alarm") && value.as_bool())
        });
        earliest = match (earliest, alarm_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
    earliest
}

proptest! {
    /// The model checker and the simulator agree on alarm reachability (and
    /// on the minimal violation depth) for randomly drawn processes.
    #[test]
    fn checker_and_simulator_agree_on_alarm_reachability(
        threshold in 1i64..5,
        horizon in 2usize..4,
    ) {
        let process = miss_counter(threshold);
        let verifier = Verifier::new(
            &process,
            VerifyOptions::default().with_depth_bound(horizon),
        )
        .unwrap();
        let outcome = verifier
            .verify(&InputSpace::Free, &[Property::NeverRaised("*Alarm*".into())])
            .unwrap();
        let checker_earliest = outcome
            .violations()
            .next()
            .map(|(_, cex)| cex.violation_instant);
        let simulator_earliest = earliest_alarm_by_simulation(&process, horizon);
        prop_assert_eq!(
            checker_earliest,
            simulator_earliest,
            "threshold {} horizon {}: checker says {:?}, simulation says {:?}",
            threshold,
            horizon,
            checker_earliest,
            simulator_earliest
        );
        // Every counterexample must replay in the simulator.
        let first_violation = outcome.violations().next().map(|(_, cex)| cex.clone());
        if let Some(cex) = first_violation {
            let replay = cex.replay(&process).unwrap();
            prop_assert!(replay.reproduced, "{}", replay.detail);
        }
    }

    /// The parallel engine returns the same verdicts as the sequential one.
    #[test]
    fn parallel_engine_matches_sequential(threshold in 1i64..4) {
        let process = miss_counter(threshold);
        let properties = [
            Property::NeverRaised("*Alarm*".into()),
            Property::DeadlockFree,
        ];
        let sequential = Verifier::new(
            &process,
            VerifyOptions::default().with_workers(1).with_depth_bound(4),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        let parallel = Verifier::new(
            &process,
            VerifyOptions::default().with_workers(3).with_depth_bound(4),
        )
        .unwrap()
        .verify(&InputSpace::Free, &properties)
        .unwrap();
        prop_assert_eq!(&sequential.verdicts, &parallel.verdicts);
        prop_assert_eq!(sequential.stats.states, parallel.stats.states);
        prop_assert_eq!(sequential.stats.transitions, parallel.stats.transitions);
    }
}

/// Builds the flattened producer thread of the case study together with its
/// scheduled timing trace (via the shared `asme2ssme` recipe, so this test
/// exercises exactly what the pipeline verifies).
fn producer_under_schedule() -> (Process, Trace) {
    use aadl::case_study::producer_consumer_instance;
    use asme2ssme::thread_under_schedule;
    use sched::SchedulingPolicy;

    let instance = producer_consumer_instance().unwrap();
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )
    .unwrap();
    let inputs = thread_model.timing_trace(&schedule, 1);
    (thread_model.flat, inputs)
}

/// Regression: the untampered case-study schedule verifies alarm-free over
/// the full 24-tick hyper-period.
#[test]
fn case_study_producer_is_alarm_free_under_the_schedule() {
    let (flat, inputs) = producer_under_schedule();
    let bound = inputs.len();
    assert_eq!(bound, 24);
    let verifier = Verifier::new(&flat, VerifyOptions::default().with_depth_bound(bound)).unwrap();
    let outcome = verifier
        .verify(
            &InputSpace::Scheduled(inputs),
            &[
                Property::NeverRaised("*Alarm*".into()),
                Property::DeadlockFree,
            ],
        )
        .unwrap();
    assert!(outcome.is_violation_free(), "{}", outcome.summary());
    assert_eq!(outcome.stats.depth, 24);
}

/// Regression: an injected deadline overrun in the producer schedule yields
/// a counterexample whose replay in the simulator reproduces the alarm.
/// (This deliberately re-implements the recipe behind
/// `polychrony_core::deadline_overrun_demo` instead of calling it — the
/// regression must not depend on the convenience wrapper it guards.)
#[test]
fn injected_deadline_bug_yields_replayable_counterexample() {
    let (flat, mut inputs) = producer_under_schedule();
    let fault = inject_deadline_overrun(&mut inputs, "").expect("fault injected");
    assert!(fault.deadline_tick > fault.resume_moved_from);

    let bound = inputs.len();
    let verifier = Verifier::new(&flat, VerifyOptions::default().with_depth_bound(bound)).unwrap();
    let outcome = verifier
        .verify(
            &InputSpace::Scheduled(inputs.clone()),
            &[Property::NeverRaised("*Alarm*".into())],
        )
        .unwrap();
    let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
        panic!("injected bug not found: {}", outcome.summary());
    };
    assert_eq!(
        cex.violation_instant, fault.deadline_tick,
        "the alarm fires exactly at the missed deadline"
    );

    // The counterexample replays in the simulator and reproduces the alarm.
    let replay = cex.replay(&flat).unwrap();
    assert!(replay.reproduced, "{}", replay.detail);

    // Independent confirmation: simulating the tampered schedule directly
    // also counts at least one alarm instant.
    let mut simulator = Simulator::new(&flat).unwrap();
    simulator.run(&inputs).unwrap();
    let report = simulator.report();
    assert!(report.alarm_instants > 0);

    // The same engine with 2 workers returns the same verdict.
    let parallel = Verifier::new(
        &flat,
        VerifyOptions::default()
            .with_workers(2)
            .with_depth_bound(bound),
    )
    .unwrap()
    .verify(
        &InputSpace::Scheduled(inputs),
        &[Property::NeverRaised("*Alarm*".into())],
    )
    .unwrap();
    assert_eq!(outcome.verdicts, parallel.verdicts);
}
