//! The interval abstraction over delay/cell memories: symbolic closure for
//! unbounded-counter state spaces.
//!
//! The explicit engine canonicalises a state as the exact memory of every
//! `delay`/`cell` operator. A monotone counter (`count := count$1 + 1`)
//! therefore makes the reachable state space infinite and every unbounded
//! run ends in [`crate::Verdict::PassedBounded`] — the fixpoint never
//! closes. This module closes it *soundly* for the common case: counters
//! whose value can never influence anything a property observes.
//!
//! # The domain
//!
//! [`AbstractValue`] is the per-slot domain of the abstract state: a slot
//! holds either an exact [`Value`], a saturated lower bound `≥ lo`
//! ([`AbstractValue::AtLeast`]) or a bounded interval `[lo, hi]`
//! ([`AbstractValue::Range`]). [`AbstractState`] is a vector of abstract
//! slots plus the scheduler phase, with a canonical byte encoding that
//! extends the concrete [`crate::state`] encoding with two new tags — so
//! abstract keys can never collide with concrete ones.
//!
//! The engine itself runs on *representatives*: [`SlotAbstraction::normalize`]
//! rewrites a concrete memory into the canonical representative of its
//! abstract class (saturating widened slots at the threshold, resetting
//! projected slots to their initial value) and the untouched
//! [`crate::state::KeyCodec`] then encodes the representative. Two concrete
//! states merge exactly when they map to the same [`AbstractState`].
//!
//! # Which slots may be abstracted
//!
//! [`SlotAbstraction::analyze`] decides, per slot, between three plans:
//!
//! * [`SlotPlan::Concrete`] — the slot stays exact (the default);
//! * [`SlotPlan::Widen`] — values above the widening threshold saturate
//!   (`v ≥ W` becomes the representative `W`, i.e. the abstract value
//!   `≥ W`), applied to slots matching the syntactic monotone-counter
//!   pattern `t := t$1 init k + c` with a positive integer increment;
//! * [`SlotPlan::Project`] — the slot is dropped from the canonical key
//!   entirely (reset to its initial value, i.e. the abstract value `⊤`),
//!   applied to every abstractable slot when `--project-counters` is on.
//!
//! A slot is *abstractable* only when its value provably cannot reach any
//! observable. The analysis computes the forward influence closure `D` of
//! the slot's defining signal through the equation graph and requires:
//!
//! * no signal of `D` is read by any checked property (exact names from
//!   `Signal`/`Present` atoms, glob patterns from `Raised` atoms matched
//!   against the property-visible — possibly `<component>_`-prefixed —
//!   name), and no signal of `D` is touched by a product port link;
//! * no signal of `D` (and not the slot operator itself) occurs in a
//!   presence-determining position: a `when` condition, a `cell` trigger, a
//!   `^e` / `when b` clock expression — value changes there would change
//!   which transitions are feasible;
//! * no signal of `D` (and not the slot operator itself) occurs in the
//!   divisor of `/` or `mod` — saturation there could manufacture or mask a
//!   division-by-zero evaluation error;
//! * no signal of `D` has a partial or multiple definition — merged partial
//!   definitions compare values at runtime;
//! * the slot memory is integer-typed, and [`Property::DeadlockFree`] is
//!   not among the checked properties (deadlock freedom quantifies over
//!   successor *existence*, which the observable-trace argument below does
//!   not cover).
//!
//! # Soundness
//!
//! Under these conditions the abstraction is *exact for observables*: the
//! value of an abstractable slot flows only into signals of `D`, none of
//! which any monitor reads or any clock condition consumes, so replacing
//! the slot value by its representative changes neither the feasibility of
//! any transition nor the value of any observed signal. Abstract and
//! concrete systems have identical observable trace sets; a `Proved` on the
//! quotient is a genuine proof and a `PassedBounded` is exactly as strong
//! as the concrete one. Independently of this argument, the engine enforces
//! the strengthen-only discipline dynamically: every abstract
//! counterexample is re-concretized and must replay in the explicit
//! simulator before being reported, and a failed replay falls back to the
//! fully concrete exploration (see `docs/SYMBOLIC.md`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};
use signal_moc::expr::{BinOp, Expr};
use signal_moc::process::{Equation, Process};
use signal_moc::value::Value;

use crate::property::pattern_matches;
use crate::state::encode_value;
use crate::Property;

/// The state-space domain the engine explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Domain {
    /// Exact per-slot values — today's explicit engine.
    #[default]
    Concrete,
    /// Interval abstraction: monotone counter slots widen to `≥ threshold`
    /// and (with projection enabled) property-invisible counter slots are
    /// dropped from the canonical key, so unbounded-counter state spaces
    /// can close with a genuine [`crate::Verdict::Proved`].
    Interval,
}

impl Domain {
    /// Parses the CLI spelling (`concrete` | `interval`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "concrete" => Some(Domain::Concrete),
            "interval" => Some(Domain::Interval),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Concrete => "concrete",
            Domain::Interval => "interval",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One slot of an [`AbstractState`]: an exact value or an integer interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AbstractValue {
    /// The slot holds exactly this value.
    Concrete(Value),
    /// The slot holds an integer `≥ lo` (the widened form of a saturated
    /// monotone counter; `AtLeast(i64::MIN)` is the domain's `⊤`).
    AtLeast(i64),
    /// The slot holds an integer in `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

/// Canonical encoding tag for [`AbstractValue::AtLeast`], disjoint from the
/// concrete value tags (0–4) of `state::encode_value`.
const TAG_AT_LEAST: u8 = 5;
/// Canonical encoding tag for [`AbstractValue::Range`].
const TAG_RANGE: u8 = 6;

impl AbstractValue {
    /// Does the abstract slot contain this concrete value?
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            AbstractValue::Concrete(v) => v == value,
            AbstractValue::AtLeast(lo) => matches!(value, Value::Int(i) if i >= lo),
            AbstractValue::Range { lo, hi } => {
                matches!(value, Value::Int(i) if i >= lo && i <= hi)
            }
        }
    }

    /// The least abstract slot covering both operands (integer slots join
    /// into intervals; incompatible values widen to `⊤`).
    pub fn join(&self, other: &AbstractValue) -> AbstractValue {
        fn bounds(v: &AbstractValue) -> Option<(i64, Option<i64>)> {
            match v {
                AbstractValue::Concrete(Value::Int(i)) => Some((*i, Some(*i))),
                AbstractValue::AtLeast(lo) => Some((*lo, None)),
                AbstractValue::Range { lo, hi } => Some((*lo, Some(*hi))),
                AbstractValue::Concrete(_) => None,
            }
        }
        if self == other {
            return self.clone();
        }
        match (bounds(self), bounds(other)) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                let lo = alo.min(blo);
                match (ahi, bhi) {
                    (Some(a), Some(b)) => AbstractValue::Range { lo, hi: a.max(b) },
                    _ => AbstractValue::AtLeast(lo),
                }
            }
            // Joining non-integer values loses everything we can express.
            _ => AbstractValue::AtLeast(i64::MIN),
        }
    }

    /// Appends the canonical byte encoding: concrete values use the exact
    /// `state` encoding (tags 0–4), intervals the disjoint tags 5–6.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AbstractValue::Concrete(v) => encode_value(v, out),
            AbstractValue::AtLeast(lo) => {
                out.push(TAG_AT_LEAST);
                out.extend_from_slice(&lo.to_le_bytes());
            }
            AbstractValue::Range { lo, hi } => {
                out.push(TAG_RANGE);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
    }
}

/// An abstract execution state: one [`AbstractValue`] per memory slot plus
/// the scheduler phase. This is the denotation the engine's representative
/// states stand for; [`SlotAbstraction::abstract_state`] maps a concrete
/// memory into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbstractState {
    /// Per-slot abstract values, in evaluator memory order.
    pub slots: Vec<AbstractValue>,
    /// Scheduler phase (same role as [`crate::State::phase`]).
    pub phase: u32,
}

impl AbstractState {
    /// Canonical byte key of the abstract state (slot encodings in order,
    /// then the phase) — the abstract counterpart of
    /// [`crate::State::key`].
    pub fn key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.slots.len() * 9 + 4);
        for slot in &self.slots {
            slot.encode(&mut out);
        }
        out.extend_from_slice(&self.phase.to_le_bytes());
        out
    }
}

/// The per-slot abstraction decision of one analyzed process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotPlan {
    /// Keep the exact value (the default, and the only sound choice for
    /// slots whose value can reach an observable).
    Concrete,
    /// Saturate values above `threshold`: the representative of every
    /// concrete value `v ≥ threshold` is `threshold` itself, denoting the
    /// abstract slot `≥ threshold`.
    Widen {
        /// Saturation point of the monotone counter.
        threshold: i64,
    },
    /// Drop the slot from the canonical key: every value maps to the
    /// initial value, denoting the abstract slot `⊤`.
    Project,
}

/// The result of the slot analysis over one process (or one product
/// component): a plan per memory slot, in evaluator allocation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotAbstraction {
    plans: Vec<SlotPlan>,
    inits: Vec<Value>,
    targets: Vec<String>,
}

/// Everything the analysis needs to know about the observation context of
/// one process: which signal names are read exactly, which glob patterns
/// are matched, how the process's signals are spelled in the
/// property-visible namespace, and whether deadlock freedom is among the
/// checked properties.
struct ReadSet {
    names: BTreeSet<String>,
    patterns: BTreeSet<String>,
    deadlock: bool,
}

impl ReadSet {
    fn of_properties(properties: &[Property]) -> Self {
        let mut names = BTreeSet::new();
        let mut patterns = BTreeSet::new();
        let mut deadlock = false;
        for property in properties {
            match property.ltl() {
                Some(ltl) => collect_atoms(ltl.invariant(), &mut names, &mut patterns),
                None => deadlock = true,
            }
        }
        Self {
            names,
            patterns,
            deadlock,
        }
    }

    /// Is the signal spelled `<prefix><signal>` in the property namespace
    /// read by any atom?
    fn reads(&self, prefix: &str, signal: &str) -> bool {
        let visible = if prefix.is_empty() {
            signal.to_string()
        } else {
            format!("{prefix}{signal}")
        };
        self.names.contains(&visible)
            || self
                .patterns
                .iter()
                .any(|pattern| pattern_matches(pattern, &visible))
    }
}

fn collect_atoms(
    formula: &crate::ltl::Formula,
    names: &mut BTreeSet<String>,
    patterns: &mut BTreeSet<String>,
) {
    use crate::ltl::Formula;
    match formula {
        Formula::Const(_) => {}
        Formula::Signal(name) | Formula::Present(name) => {
            names.insert(name.clone());
        }
        Formula::Raised(pattern) => {
            patterns.insert(pattern.clone());
        }
        Formula::Not(a) | Formula::Previously(a) | Formula::Once(a) | Formula::Historically(a) => {
            collect_atoms(a, names, patterns)
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Since(a, b) => {
            collect_atoms(a, names, patterns);
            collect_atoms(b, names, patterns);
        }
        Formula::Within {
            trigger, response, ..
        } => {
            collect_atoms(trigger, names, patterns);
            collect_atoms(response, names, patterns);
        }
    }
}

/// One `delay`/`cell` operator site discovered by mirroring the
/// evaluator's slot-allocation walk.
struct SlotSite {
    /// Target signal of the containing equation.
    target: String,
    /// Initial value of the slot.
    init: Value,
    /// The operator's own result is consumed in a presence-determining or
    /// divisor position.
    forbidden: bool,
    /// The containing equation is exactly the monotone-counter pattern
    /// `target := target$1 init k + c` with integer `c ≥ 1`, and this slot
    /// is its delay.
    monotone: bool,
}

/// Walks `expr` in the evaluator's slot-allocation order (`delay`/`cell`
/// allocate before their operands are compiled; binary operands
/// left-to-right), pushing a [`SlotSite`] per operator and collecting every
/// signal referenced in a presence/divisor position into `forbidden_refs`.
fn walk_expr(
    expr: &Expr,
    target: &str,
    forbidden: bool,
    slots: &mut Vec<SlotSite>,
    forbidden_refs: &mut BTreeSet<String>,
) {
    match expr {
        Expr::Var(name) => {
            if forbidden {
                forbidden_refs.insert(name.clone());
            }
        }
        Expr::Const(_) => {}
        Expr::Unary(_, a) => walk_expr(a, target, forbidden, slots, forbidden_refs),
        Expr::Binary(op, a, b) => {
            walk_expr(a, target, forbidden, slots, forbidden_refs);
            let divisor = matches!(op, BinOp::Div | BinOp::Mod);
            walk_expr(b, target, forbidden || divisor, slots, forbidden_refs);
        }
        Expr::Delay(operand, init) => {
            slots.push(SlotSite {
                target: target.to_string(),
                init: init.clone(),
                forbidden,
                monotone: false,
            });
            walk_expr(operand, target, forbidden, slots, forbidden_refs);
        }
        Expr::When(e, b) => {
            walk_expr(e, target, forbidden, slots, forbidden_refs);
            walk_expr(b, target, true, slots, forbidden_refs);
        }
        Expr::Default(u, v) => {
            walk_expr(u, target, forbidden, slots, forbidden_refs);
            walk_expr(v, target, forbidden, slots, forbidden_refs);
        }
        Expr::Cell(i, b, init) => {
            slots.push(SlotSite {
                target: target.to_string(),
                init: init.clone(),
                forbidden,
                monotone: false,
            });
            walk_expr(i, target, forbidden, slots, forbidden_refs);
            walk_expr(b, target, true, slots, forbidden_refs);
        }
        // Clock expressions only observe presence, but a slot feeding them
        // sits one `when` away from feasibility — treat conservatively.
        Expr::ClockOf(e) | Expr::ClockWhen(e) => {
            walk_expr(e, target, true, slots, forbidden_refs);
        }
    }
}

/// Does `expr` match `Var(target)$1 init Int + Const(Int c)` with `c ≥ 1`
/// (either operand order)? The shape guarantees the equation allocates
/// exactly one slot — the counter's delay.
fn monotone_counter(expr: &Expr, target: &str) -> bool {
    let Expr::Binary(BinOp::Add, a, b) = expr else {
        return false;
    };
    let is_counter_delay = |e: &Expr| {
        matches!(e, Expr::Delay(operand, Value::Int(_))
            if matches!(operand.as_ref(), Expr::Var(name) if name == target))
    };
    let is_positive_step = |e: &Expr| matches!(e, Expr::Const(Value::Int(c)) if *c >= 1);
    (is_counter_delay(a) && is_positive_step(b)) || (is_positive_step(a) && is_counter_delay(b))
}

impl SlotAbstraction {
    /// Analyzes `process` and plans the abstraction of each memory slot.
    ///
    /// * `properties` — the properties that will be checked; their atoms
    ///   (and [`Property::DeadlockFree`], which disables abstraction
    ///   entirely) define the observable read set.
    /// * `prefix` — how this process's signals are spelled in the
    ///   property namespace (`""` for a single thread, `"<component>_"`
    ///   inside a product).
    /// * `extra_reads` — additional observable signal names in the
    ///   *process* namespace (port-link endpoints of a product component).
    /// * `project` — plan [`SlotPlan::Project`] for every abstractable
    ///   slot instead of widening only the monotone ones.
    /// * `widen_threshold` — the saturation point for widened slots.
    /// * `expected_slots` — the evaluator's `memory_len()`; if the mirror
    ///   walk disagrees, the analysis degrades to the identity (all
    ///   concrete) rather than guessing at slot positions.
    pub fn analyze(
        process: &Process,
        properties: &[Property],
        prefix: &str,
        extra_reads: &[String],
        project: bool,
        widen_threshold: i64,
        expected_slots: usize,
    ) -> Self {
        let reads = ReadSet::of_properties(properties);

        // Mirror of the evaluator's allocation walk over the equations.
        let mut slots: Vec<SlotSite> = Vec::new();
        let mut forbidden_refs: BTreeSet<String> = BTreeSet::new();
        let mut def_counts: BTreeMap<&str, (usize, bool)> = BTreeMap::new();
        let mut influences: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
        for equation in &process.equations {
            let (target, expr, partial) = match equation {
                Equation::Definition { target, expr } => (target, expr, false),
                Equation::PartialDefinition { target, expr } => (target, expr, true),
                _ => continue,
            };
            let first_slot = slots.len();
            walk_expr(expr, target, false, &mut slots, &mut forbidden_refs);
            if !partial && monotone_counter(expr, target) {
                // The pattern allocates exactly one slot.
                debug_assert_eq!(slots.len(), first_slot + 1);
                if let Some(site) = slots.get_mut(first_slot) {
                    site.monotone = true;
                }
            }
            let entry = def_counts.entry(target.as_str()).or_insert((0, false));
            entry.0 += 1;
            entry.1 |= partial;
            for source in expr.referenced_signals() {
                influences.entry(source).or_default().insert(target);
            }
        }

        let identity = |n: usize| Self {
            plans: vec![SlotPlan::Concrete; n],
            inits: vec![Value::Event; n],
            targets: vec![String::new(); n],
        };
        if slots.len() != expected_slots {
            // The mirror walk and the evaluator disagree about slot
            // allocation — never abstract on a guessed layout.
            return identity(expected_slots);
        }
        if reads.deadlock {
            return identity(expected_slots);
        }

        let multi_def: BTreeSet<&str> = def_counts
            .iter()
            .filter(|(_, (count, partial))| *count > 1 || *partial)
            .map(|(target, _)| *target)
            .collect();

        // Forward influence closure of one defining signal.
        let closure = |start: &str| -> BTreeSet<String> {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut frontier = vec![start.to_string()];
            while let Some(signal) = frontier.pop() {
                if !seen.insert(signal.clone()) {
                    continue;
                }
                if let Some(targets) = influences.get(signal.as_str()) {
                    for next in targets {
                        if !seen.contains(*next) {
                            frontier.push((*next).to_string());
                        }
                    }
                }
            }
            seen
        };

        let plans = slots
            .iter()
            .map(|site| {
                if site.forbidden || !matches!(site.init, Value::Int(_)) {
                    return SlotPlan::Concrete;
                }
                let influenced = closure(&site.target);
                let leaks = influenced.iter().any(|signal| {
                    reads.reads(prefix, signal)
                        || extra_reads.iter().any(|r| r == signal)
                        || forbidden_refs.contains(signal)
                        || multi_def.contains(signal.as_str())
                });
                if leaks {
                    SlotPlan::Concrete
                } else if project {
                    SlotPlan::Project
                } else if site.monotone {
                    SlotPlan::Widen {
                        threshold: widen_threshold,
                    }
                } else {
                    SlotPlan::Concrete
                }
            })
            .collect();
        Self {
            plans,
            inits: slots.iter().map(|s| s.init.clone()).collect(),
            targets: slots.iter().map(|s| s.target.clone()).collect(),
        }
    }

    /// An identity abstraction (all slots concrete) of the given width.
    pub fn identity(slots: usize) -> Self {
        Self {
            plans: vec![SlotPlan::Concrete; slots],
            inits: vec![Value::Event; slots],
            targets: vec![String::new(); slots],
        }
    }

    /// Concatenates per-component abstractions into the joint product
    /// abstraction (joint memory is the concatenation of component
    /// memories).
    pub fn concat(parts: impl IntoIterator<Item = SlotAbstraction>) -> Self {
        let mut plans = Vec::new();
        let mut inits = Vec::new();
        let mut targets = Vec::new();
        for part in parts {
            plans.extend(part.plans);
            inits.extend(part.inits);
            targets.extend(part.targets);
        }
        Self {
            plans,
            inits,
            targets,
        }
    }

    /// `true` when no slot is abstracted — the interval run would explore
    /// exactly the concrete space, so callers skip the abstract pass.
    pub fn is_identity(&self) -> bool {
        self.plans.iter().all(|p| *p == SlotPlan::Concrete)
    }

    /// The per-slot plans, in evaluator memory order.
    pub fn plans(&self) -> &[SlotPlan] {
        &self.plans
    }

    /// Number of slots planned for widening.
    pub fn widened_slots(&self) -> usize {
        self.plans
            .iter()
            .filter(|p| matches!(p, SlotPlan::Widen { .. }))
            .count()
    }

    /// Number of slots dropped from the canonical key by projection.
    pub fn projected_slots(&self) -> usize {
        self.plans
            .iter()
            .filter(|p| matches!(p, SlotPlan::Project))
            .count()
    }

    /// Target signals of the non-concrete slots (for reports and tracing).
    pub fn abstracted_targets(&self) -> Vec<&str> {
        self.plans
            .iter()
            .zip(&self.targets)
            .filter(|(p, _)| **p != SlotPlan::Concrete)
            .map(|(_, t)| t.as_str())
            .collect()
    }

    /// Rewrites `memory` into the canonical representative of its abstract
    /// equivalence class, returning how many slots changed (the engine's
    /// `widened` counter). Widened slots saturate at their threshold;
    /// projected slots reset to their initial value.
    pub fn normalize(&self, memory: &mut [Value]) -> usize {
        debug_assert_eq!(memory.len(), self.plans.len());
        let mut changed = 0;
        for (i, plan) in self.plans.iter().enumerate() {
            match plan {
                SlotPlan::Concrete => {}
                SlotPlan::Widen { threshold } => {
                    if let Value::Int(v) = &memory[i] {
                        if *v > *threshold {
                            memory[i] = Value::Int(*threshold);
                            changed += 1;
                        }
                    }
                }
                SlotPlan::Project => {
                    if memory[i] != self.inits[i] {
                        memory[i] = self.inits[i].clone();
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// The abstract state denoted by a (representative) concrete memory.
    pub fn abstract_state(&self, memory: &[Value], phase: u32) -> AbstractState {
        let slots = memory
            .iter()
            .zip(&self.plans)
            .map(|(value, plan)| match plan {
                SlotPlan::Concrete => AbstractValue::Concrete(value.clone()),
                SlotPlan::Widen { threshold } => match value {
                    Value::Int(v) if *v >= *threshold => AbstractValue::AtLeast(*threshold),
                    other => AbstractValue::Concrete(other.clone()),
                },
                SlotPlan::Project => AbstractValue::AtLeast(i64::MIN),
            })
            .collect();
        AbstractState { slots, phase }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::eval::Evaluator;
    use signal_moc::value::ValueType;

    /// `count := count$1 init 0 + 1` alongside an observed alarm chain that
    /// never reads the counter.
    fn counter_process() -> Process {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("count", ValueType::Integer);
        b.define(
            "Alarm",
            Expr::and(Expr::var("tick"), Expr::not(Expr::var("tick"))),
        );
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["tick", "Alarm", "count"]);
        b.build().expect("valid process")
    }

    fn analyze(process: &Process, properties: &[Property], project: bool) -> SlotAbstraction {
        let evaluator = Evaluator::new(process).expect("evaluates");
        SlotAbstraction::analyze(
            process,
            properties,
            "",
            &[],
            project,
            8,
            evaluator.memory_len(),
        )
    }

    #[test]
    fn isolated_monotone_counter_widens() {
        let process = counter_process();
        let abs = analyze(&process, &[Property::NeverRaised("*Alarm*".into())], false);
        assert_eq!(abs.plans(), &[SlotPlan::Widen { threshold: 8 }]);
        assert_eq!(abs.widened_slots(), 1);
        assert_eq!(abs.projected_slots(), 0);
        assert_eq!(abs.abstracted_targets(), vec!["count"]);

        let mut memory = vec![Value::Int(12)];
        assert_eq!(abs.normalize(&mut memory), 1);
        assert_eq!(memory, vec![Value::Int(8)]);
        // Already saturated: canonical, nothing to widen.
        assert_eq!(abs.normalize(&mut memory), 0);
        let mut below = vec![Value::Int(3)];
        assert_eq!(abs.normalize(&mut below), 0);
        assert_eq!(below, vec![Value::Int(3)]);
    }

    #[test]
    fn projection_resets_isolated_slots_to_init() {
        let process = counter_process();
        let abs = analyze(&process, &[Property::NeverRaised("*Alarm*".into())], true);
        assert_eq!(abs.plans(), &[SlotPlan::Project]);
        let mut memory = vec![Value::Int(41)];
        assert_eq!(abs.normalize(&mut memory), 1);
        assert_eq!(memory, vec![Value::Int(0)]);
    }

    #[test]
    fn property_reading_the_counter_forces_concrete() {
        let process = counter_process();
        for property in [
            Property::parse_ltl("never count").unwrap(),
            Property::parse_ltl("never present(count)").unwrap(),
            Property::parse_ltl("never raised(cou*)").unwrap(),
            Property::parse_ltl("never raised(*ount*)").unwrap(),
        ] {
            let abs = analyze(&process, std::slice::from_ref(&property), true);
            assert!(abs.is_identity(), "{property:?} must pin the slot");
        }
        // A glob that does not cover the counter leaves it abstractable.
        let abs = analyze(
            &process,
            &[Property::parse_ltl("never raised(*Alarm*)").unwrap()],
            false,
        );
        assert!(!abs.is_identity());
    }

    #[test]
    fn deadlock_freedom_disables_abstraction() {
        let process = counter_process();
        let abs = analyze(
            &process,
            &[
                Property::NeverRaised("*Alarm*".into()),
                Property::DeadlockFree,
            ],
            true,
        );
        assert!(abs.is_identity());
    }

    #[test]
    fn presence_influence_forces_concrete() {
        // gate := count$1 > 2; out := tick when gate — the counter's value
        // decides feasibility through the `when` condition.
        let mut b = ProcessBuilder::new("gated");
        b.input("tick", ValueType::Boolean);
        b.output("out", ValueType::Boolean);
        b.local("count", ValueType::Integer);
        b.local("gate", ValueType::Boolean);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.define(
            "gate",
            Expr::ge(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(3)),
        );
        b.define("out", Expr::when(Expr::var("tick"), Expr::var("gate")));
        b.synchronize(&["tick", "count", "gate"]);
        let process = b.build().expect("valid process");
        let abs = analyze(&process, &[Property::NeverRaised("*never*".into())], true);
        assert!(abs.is_identity(), "count flows into a when-condition");
    }

    #[test]
    fn influence_closure_follows_derived_signals() {
        // count feeds shadow; a property reads shadow — count must stay
        // concrete even though nothing reads it directly.
        let mut b = ProcessBuilder::new("chain");
        b.input("tick", ValueType::Boolean);
        b.local("count", ValueType::Integer);
        b.output("shadow", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.define("shadow", Expr::add(Expr::var("count"), Expr::int(0)));
        b.synchronize(&["tick", "count", "shadow"]);
        let process = b.build().expect("valid process");
        let abs = analyze(
            &process,
            &[Property::parse_ltl("never shadow").unwrap()],
            true,
        );
        assert!(abs.is_identity());
        // With an unrelated property both slots abstract away.
        let abs = analyze(&process, &[Property::NeverRaised("*Alarm*".into())], true);
        assert_eq!(abs.projected_slots(), 1);
    }

    #[test]
    fn slot_count_mismatch_degrades_to_identity() {
        let process = counter_process();
        let abs = SlotAbstraction::analyze(
            &process,
            &[Property::NeverRaised("*Alarm*".into())],
            "",
            &[],
            false,
            8,
            7, // wrong width
        );
        assert!(abs.is_identity());
        assert_eq!(abs.plans().len(), 7);
    }

    #[test]
    fn prefixed_reads_and_extra_reads_apply_in_products() {
        let process = counter_process();
        // In the joint namespace the counter is `th_count`.
        let evaluator = Evaluator::new(&process).expect("evaluates");
        let reads_counter = SlotAbstraction::analyze(
            &process,
            &[Property::parse_ltl("never th_count").unwrap()],
            "th_",
            &[],
            true,
            8,
            evaluator.memory_len(),
        );
        assert!(reads_counter.is_identity());
        let link_touches_counter = SlotAbstraction::analyze(
            &process,
            &[Property::NeverRaised("*Alarm*".into())],
            "th_",
            &["count".to_string()],
            true,
            8,
            evaluator.memory_len(),
        );
        assert!(link_touches_counter.is_identity());
    }

    #[test]
    fn abstract_values_encode_canonically_and_join() {
        let mut concrete = Vec::new();
        AbstractValue::Concrete(Value::Int(8)).encode(&mut concrete);
        let mut widened = Vec::new();
        AbstractValue::AtLeast(8).encode(&mut widened);
        assert_ne!(concrete, widened, "tags keep exact and widened apart");
        let mut range = Vec::new();
        AbstractValue::Range { lo: 1, hi: 8 }.encode(&mut range);
        assert_ne!(widened, range);

        assert!(AbstractValue::AtLeast(8).contains(&Value::Int(100)));
        assert!(!AbstractValue::AtLeast(8).contains(&Value::Int(7)));
        assert!(AbstractValue::Range { lo: 1, hi: 3 }.contains(&Value::Int(2)));
        assert_eq!(
            AbstractValue::Concrete(Value::Int(2)).join(&AbstractValue::Concrete(Value::Int(5))),
            AbstractValue::Range { lo: 2, hi: 5 }
        );
        assert_eq!(
            AbstractValue::Range { lo: 0, hi: 4 }.join(&AbstractValue::AtLeast(2)),
            AbstractValue::AtLeast(0)
        );
        assert_eq!(
            AbstractValue::Concrete(Value::Bool(true)).join(&AbstractValue::AtLeast(0)),
            AbstractValue::AtLeast(i64::MIN)
        );
    }

    #[test]
    fn abstract_state_keys_separate_phases_and_slots() {
        let process = counter_process();
        let abs = analyze(&process, &[Property::NeverRaised("*Alarm*".into())], false);
        let a = abs.abstract_state(&[Value::Int(8)], 0);
        let b = abs.abstract_state(&[Value::Int(11)], 0);
        assert_eq!(a, b, "saturated counters denote the same abstract state");
        assert_eq!(a.key(), b.key());
        let c = abs.abstract_state(&[Value::Int(3)], 0);
        assert_ne!(a.key(), c.key());
        let d = abs.abstract_state(&[Value::Int(3)], 1);
        assert_ne!(c.key(), d.key());
    }

    #[test]
    fn domain_parses_its_cli_spellings() {
        assert_eq!(Domain::parse("concrete"), Some(Domain::Concrete));
        assert_eq!(Domain::parse("interval"), Some(Domain::Interval));
        assert_eq!(Domain::parse("symbolic"), None);
        assert_eq!(Domain::Interval.to_string(), "interval");
        assert_eq!(Domain::default(), Domain::Concrete);
    }
}
