//! The shared exploration core: a depth-stratified parallel reachability
//! engine over interned states.
//!
//! Both explorers — the single-process [`crate::Verifier`] and the
//! [`crate::ProductVerifier`] — are thin [`Expander`] implementations over
//! this one engine. The engine owns everything that is *not* model
//! specific:
//!
//! * the seen-set, a [`StateInterner`] mapping canonical state encodings to
//!   dense `u32` ids — the frontier, the parent links and every merge
//!   structure speak ids, so no `State` struct and no key `Vec<u8>` is ever
//!   stored per explored state beyond the interner's arena;
//! * the level loop (depth bound, state cap, early stop once every property
//!   has a violation — all checked *between* levels so verdicts stay
//!   deterministic under any worker count);
//! * the frontier scheduling: inline execution when one worker suffices,
//!   contiguous chunks under [`FrontierMode::Barrier`], and per-worker
//!   deques with work stealing under [`FrontierMode::WorkStealing`] (the
//!   default — within a level the queues are drained without refill, so a
//!   thief that finds every queue empty can exit immediately);
//! * deterministic merging: same-depth discovery races are recorded as
//!   deferred ties and resolved at the level barrier by the canonical edge
//!   encoding, violations are tie-broken by [`trace_order`], and fatal
//!   errors by the erroring state's key bytes — every comparison is over
//!   *key bytes*, never interner ids, because ids are allocation-ordered
//!   and therefore race-dependent.
//!
//! Counterexample paths are reconstructed on demand from the parent links:
//! each link stores only the predecessor id and the *edge index*; the
//! expander re-derives the concrete input step from the predecessor's key
//! ([`Expander::edge_step`]), so the engine never stores input steps
//! per state either.

use std::collections::VecDeque;
use std::sync::Mutex;

use signal_moc::trace::{Trace, TraceStep};

use crate::counterexample::Counterexample;
use crate::explore::{
    ExplorationStats, FrontierMode, PropertyVerdict, Verdict, VerificationOutcome, VerifyError,
    VerifyOptions,
};
use crate::property::Property;
use crate::state::{State, StateInterner};

/// Sentinel predecessor id of the initial state.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Parent link of an interned state: how it was first reached (subject to
/// the deterministic same-depth tie-break at the level barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ParentLink {
    /// Interned id of the predecessor ([`NO_PARENT`] for the initial
    /// state).
    pub prev: u32,
    /// Index of the edge taken from the predecessor, in the expander's
    /// stable edge numbering (a free-mode candidate index, or the single
    /// scheduled/product step).
    pub edge: u32,
    /// Breadth-first level at which the state was discovered.
    pub depth: u32,
}

/// A violation observed while expanding one level, in raw (id-based) form;
/// the winning one per property is materialised into a
/// [`Counterexample`] at the barrier.
struct RawViolation {
    property: usize,
    parent: u32,
    /// The violating edge from `parent`; `None` for a dead end (the state
    /// itself has no feasible successor).
    edge: Option<u32>,
    witness: String,
}

/// One model-specific exploration step: how to expand a state and how to
/// re-derive the input step of a recorded edge.
pub(crate) trait Expander: Sync {
    /// Per-worker scratch (evaluators, codecs, memo tables) reused across
    /// levels.
    type Ctx: Send;

    /// A fresh worker context.
    fn new_ctx(&self) -> Self::Ctx;

    /// Expands one state (given by its canonical key encoding) at `depth`,
    /// reporting successors, violations and counters through `sink`.
    ///
    /// # Errors
    ///
    /// A returned error is *fatal*: the engine aborts the run with the
    /// error of the smallest erroring state (by key bytes) once the level
    /// completes.
    fn expand(
        &self,
        ctx: &mut Self::Ctx,
        key: &[u8],
        depth: usize,
        sink: &mut Sink<'_>,
    ) -> Result<(), VerifyError>;

    /// The concrete input step of edge `edge` out of the state encoded by
    /// `prev_key`. Must be a pure function of `(prev_key, edge)` — it is
    /// re-invoked during path reconstruction and tie-breaking.
    fn edge_step(&self, prev_key: &[u8], edge: u32) -> TraceStep;

    /// Names of the properties compiled to monitor automata, for telemetry
    /// attribution. Every monitored property steps the same number of times
    /// (once per executed instant), so the engine splits the total
    /// monitor-step count evenly across these names.
    fn monitored_properties(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Where one worker reports what it saw while expanding its share of a
/// level. All merging is deferred to the level barrier.
pub(crate) struct Sink<'a> {
    interner: &'a StateInterner<ParentLink>,
    /// Interned id of the state currently being expanded.
    parent: u32,
    /// Level of the state currently being expanded.
    depth: usize,
    next: Vec<u32>,
    ties: Vec<(u32, ParentLink)>,
    violations: Vec<RawViolation>,
    transitions: usize,
    infeasible: usize,
    pruned: usize,
    memo_hits: usize,
    memo_misses: usize,
    monitor_steps: usize,
    widened: usize,
    fatal: Option<(u32, VerifyError)>,
}

impl<'a> Sink<'a> {
    fn new(interner: &'a StateInterner<ParentLink>) -> Self {
        Self {
            interner,
            parent: NO_PARENT,
            depth: 0,
            next: Vec::new(),
            ties: Vec::new(),
            violations: Vec::new(),
            transitions: 0,
            infeasible: 0,
            pruned: 0,
            memo_hits: 0,
            memo_misses: 0,
            monitor_steps: 0,
            widened: 0,
            fatal: None,
        }
    }

    /// Reports a successor reached over edge `edge`, interning its
    /// canonical encoding. Returns `true` when the state was fresh (it
    /// joins the next frontier). A rediscovery at the same depth is
    /// recorded as a deferred tie and resolved deterministically at the
    /// barrier.
    pub fn successor(&mut self, hash: u64, key: &[u8], edge: u32) -> bool {
        let link = ParentLink {
            prev: self.parent,
            edge,
            depth: self.depth as u32 + 1,
        };
        let (id, existing) = self.interner.intern(hash, key, || link);
        match existing {
            None => {
                self.next.push(id);
                true
            }
            Some(incumbent) => {
                if incumbent.depth == link.depth {
                    self.ties.push((id, link));
                }
                false
            }
        }
    }

    /// Reports a violation of property `property` observed on edge `edge`
    /// out of the current state (`None` for a dead end of the state
    /// itself).
    pub fn violation(&mut self, property: usize, edge: Option<u32>, witness: String) {
        self.violations.push(RawViolation {
            property,
            parent: self.parent,
            edge,
            witness,
        });
    }

    /// Counts one executed transition.
    pub fn transition(&mut self) {
        self.transitions += 1;
    }

    /// Counts one input valuation rejected by the evaluator.
    pub fn infeasible(&mut self) {
        self.infeasible += 1;
    }

    /// Counts one candidate skipped by the dispatch-feasibility oracle.
    pub fn pruned(&mut self) {
        self.pruned += 1;
    }

    /// Counts component steps answered by the product's per-component memo
    /// table.
    pub fn memo_hit(&mut self, n: usize) {
        self.memo_hits += n;
    }

    /// Counts component steps resolved through the evaluator (memo misses).
    pub fn memo_miss(&mut self, n: usize) {
        self.memo_misses += n;
    }

    /// Counts one monitor-automaton step.
    pub fn monitor_step(&mut self) {
        self.monitor_steps += 1;
    }

    /// Counts memory slots rewritten to their abstract representative
    /// (saturated or reset) while canonicalising one successor.
    pub fn widened(&mut self, n: usize) {
        self.widened += n;
    }

    /// Records a fatal error for the current state, keeping the error of
    /// the smallest erroring state (by key bytes) so the reported error
    /// does not depend on scheduling.
    fn record_fatal(&mut self, error: VerifyError) {
        let replace = match &self.fatal {
            None => true,
            Some((incumbent, _)) => {
                let mut a = Vec::new();
                let mut b = Vec::new();
                self.interner.copy_key(self.parent, &mut a);
                self.interner.copy_key(*incumbent, &mut b);
                a < b
            }
        };
        if replace {
            self.fatal = Some((self.parent, error));
        }
    }
}

/// Runs the depth-stratified exploration from `initial` under `options`,
/// returning per-property verdicts and stats. `pre_truncated` marks a
/// search that is already known to be partial (e.g. a truncated candidate
/// enumeration or dropped link deliveries) before the first level.
pub(crate) fn explore<E: Expander>(
    expander: &E,
    initial: &State,
    options: &VerifyOptions,
    properties: &[Property],
    pre_truncated: bool,
) -> Result<VerificationOutcome, VerifyError> {
    let interner: StateInterner<ParentLink> =
        StateInterner::new(options.shards, options.interner_capacity);
    let initial_key = initial.key();
    let mut seed_codec = crate::state::KeyCodec::new();
    let initial_hash = seed_codec.seed_state(initial);
    let (root, _) = interner.intern(initial_hash, initial_key.as_bytes(), || ParentLink {
        prev: NO_PARENT,
        edge: 0,
        depth: 0,
    });

    let mut frontier = vec![root];
    let mut depth = 0usize;
    let mut transitions = 0usize;
    let mut infeasible = 0usize;
    let mut pruned = 0usize;
    let mut memo_hits = 0usize;
    let mut memo_misses = 0usize;
    let mut monitor_steps = 0usize;
    let mut widened = 0usize;
    let mut peak_frontier = 0usize;
    let mut frontier_levels: Vec<u32> = Vec::new();
    let mut truncated = pre_truncated;
    let mut workers_used = 1usize;

    // Telemetry. All collector traffic happens at level barriers (never in
    // the per-state path) and is observational only: nothing read from the
    // collector feeds back into the exploration, so collection mode cannot
    // perturb verdicts or stats. Steals are the one mid-level measurement;
    // they land in a dedicated atomic, counted only when collection is on.
    let obs = &options.collector;
    let obs_enabled = obs.is_enabled();
    let mut obs_span = obs.span("engine.explore");
    let c_states = obs.counter("engine.states");
    let c_transitions = obs.counter("engine.transitions");
    let c_infeasible = obs.counter("engine.infeasible");
    let c_pruned = obs.counter("engine.pruned");
    let c_memo_hits = obs.counter("engine.memo_hits");
    let c_memo_misses = obs.counter("engine.memo_misses");
    let c_monitor_steps = obs.counter("engine.monitor_steps");
    let c_widened = obs.counter("engine.widened");
    let c_levels = obs.counter("engine.levels");
    let c_steals = obs.counter("engine.steals");
    let g_frontier = obs.gauge("engine.frontier");
    let g_depth = obs.gauge("engine.depth");
    let g_interner_states = obs.gauge("engine.interner.states");
    let g_interner_bytes = obs.gauge("engine.interner.bytes");
    let steal_count = std::sync::atomic::AtomicUsize::new(0);
    c_states.add(1); // the interned initial state
    let mut found: Vec<Option<Counterexample>> = vec![None; properties.len()];
    // Per-worker contexts persist across levels (an expander context clones
    // the evaluator, which deep-copies the process — that must never sit in
    // the per-level path) and grow lazily to the parallelism actually
    // exercised.
    let mut ctxs: Vec<E::Ctx> = Vec::new();

    loop {
        if frontier.is_empty() {
            break;
        }
        if found.iter().all(Option::is_some) {
            // Every property already has a (minimal-depth) violation: stop
            // early. The frontier is not empty, so the stats describe a
            // partial search, not an exhausted space.
            truncated = true;
            break;
        }
        if let Some(bound) = options.depth_bound {
            if depth >= bound {
                truncated = true;
                break;
            }
        }
        if interner.len() >= options.max_states {
            truncated = true;
            break;
        }
        peak_frontier = peak_frontier.max(frontier.len());
        frontier_levels.push(frontier.len() as u32);

        let workers = options.workers.max(1).min(frontier.len());
        workers_used = workers_used.max(workers);
        while ctxs.len() < workers {
            ctxs.push(expander.new_ctx());
        }

        let mut sinks: Vec<Sink<'_>> = (0..workers).map(|_| Sink::new(&interner)).collect();
        if workers == 1 {
            let sink = &mut sinks[0];
            let ctx = &mut ctxs[0];
            let mut iter = frontier.iter().copied();
            run_worker(expander, ctx, sink, depth, || iter.next());
        } else {
            match options.frontier {
                FrontierMode::Barrier => {
                    let chunk_size = frontier.len().div_ceil(workers);
                    let chunks = frontier.chunks(chunk_size);
                    std::thread::scope(|scope| {
                        for ((chunk, sink), ctx) in
                            chunks.zip(sinks.iter_mut()).zip(ctxs.iter_mut())
                        {
                            scope.spawn(move || {
                                let mut iter = chunk.iter().copied();
                                run_worker(expander, ctx, sink, depth, || iter.next());
                            });
                        }
                    });
                }
                FrontierMode::WorkStealing => {
                    // Per-worker deques filled round-robin before the level
                    // starts; nothing is ever pushed mid-level, so a full
                    // empty scan means the level is drained.
                    let queues: Vec<Mutex<VecDeque<u32>>> =
                        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
                    for (i, &id) in frontier.iter().enumerate() {
                        queues[i % workers]
                            .lock()
                            .expect("frontier queue poisoned")
                            .push_back(id);
                    }
                    std::thread::scope(|scope| {
                        for (me, (sink, ctx)) in sinks.iter_mut().zip(ctxs.iter_mut()).enumerate() {
                            let queues = &queues;
                            let steal_count = &steal_count;
                            scope.spawn(move || {
                                run_worker(expander, ctx, sink, depth, || {
                                    // Own queue first (front: cache-warm
                                    // breadth order), then steal from the
                                    // back of the others.
                                    if let Some(id) = queues[me]
                                        .lock()
                                        .expect("frontier queue poisoned")
                                        .pop_front()
                                    {
                                        return Some(id);
                                    }
                                    for offset in 1..queues.len() {
                                        let victim = (me + offset) % queues.len();
                                        if let Some(id) = queues[victim]
                                            .lock()
                                            .expect("frontier queue poisoned")
                                            .pop_back()
                                        {
                                            if obs_enabled {
                                                steal_count.fetch_add(
                                                    1,
                                                    std::sync::atomic::Ordering::Relaxed,
                                                );
                                            }
                                            return Some(id);
                                        }
                                    }
                                    None
                                });
                            });
                        }
                    });
                }
            }
        }

        // Barrier: merge worker results. A fatal error aborts before any
        // violation is resolved (an inexecutable scheduled step outranks
        // same-level violations, matching the sequential semantics).
        let mut next = Vec::new();
        let mut ties: Vec<(u32, ParentLink)> = Vec::new();
        let mut violations: Vec<RawViolation> = Vec::new();
        let mut fatal: Option<(u32, VerifyError)> = None;
        let mut level_transitions = 0usize;
        let mut level_infeasible = 0usize;
        let mut level_pruned = 0usize;
        let mut level_memo_hits = 0usize;
        let mut level_memo_misses = 0usize;
        let mut level_monitor_steps = 0usize;
        let mut level_widened = 0usize;
        for sink in sinks {
            level_transitions += sink.transitions;
            level_infeasible += sink.infeasible;
            level_pruned += sink.pruned;
            level_memo_hits += sink.memo_hits;
            level_memo_misses += sink.memo_misses;
            level_monitor_steps += sink.monitor_steps;
            level_widened += sink.widened;
            next.extend(sink.next);
            ties.extend(sink.ties);
            violations.extend(sink.violations);
            if let Some((id, error)) = sink.fatal {
                let replace = match &fatal {
                    None => true,
                    Some((incumbent, _)) => {
                        let mut a = Vec::new();
                        let mut b = Vec::new();
                        interner.copy_key(id, &mut a);
                        interner.copy_key(*incumbent, &mut b);
                        a < b
                    }
                };
                if replace {
                    fatal = Some((id, error));
                }
            }
        }
        transitions += level_transitions;
        infeasible += level_infeasible;
        pruned += level_pruned;
        memo_hits += level_memo_hits;
        memo_misses += level_memo_misses;
        monitor_steps += level_monitor_steps;
        widened += level_widened;

        // Flush this level's deltas to the collector — once per barrier, so
        // the amortised hot-loop cost stays at ~one relaxed atomic per
        // state. The interner gauges lock each shard briefly, which is why
        // they too are read only here (and only when collecting).
        if obs_enabled {
            c_states.add(next.len() as u64);
            c_transitions.add(level_transitions as u64);
            c_infeasible.add(level_infeasible as u64);
            c_pruned.add(level_pruned as u64);
            c_memo_hits.add(level_memo_hits as u64);
            c_memo_misses.add(level_memo_misses as u64);
            c_monitor_steps.add(level_monitor_steps as u64);
            c_widened.add(level_widened as u64);
            c_levels.add(1);
            g_depth.set(depth as u64 + 1);
            g_frontier.set(next.len() as u64);
            g_interner_states.set(interner.len() as u64);
            g_interner_bytes.set(interner.arena_bytes() as u64);
            if obs.is_full() {
                let mut attrs: Vec<(String, polyobs::AttrValue)> = vec![
                    ("depth".into(), depth.into()),
                    ("frontier".into(), frontier.len().into()),
                    ("next".into(), next.len().into()),
                    ("states".into(), interner.len().into()),
                    ("transitions".into(), transitions.into()),
                ];
                if let Some(bound) = options.depth_bound {
                    attrs.push(("bound".into(), bound.into()));
                }
                obs.event("engine.level", attrs);
            }
        }

        if let Some((_, error)) = fatal {
            return Err(error);
        }

        // Resolve same-depth discovery ties: for each contested state the
        // parent link with the smallest canonical edge encoding wins —
        // a pure function of key bytes, so the recorded exploration tree
        // is identical under any worker count and frontier mode.
        ties.sort_unstable_by_key(|(id, _)| *id);
        let mut i = 0usize;
        while i < ties.len() {
            let id = ties[i].0;
            let mut best = interner.payload(id);
            let mut best_order = link_order(expander, &interner, &best);
            while i < ties.len() && ties[i].0 == id {
                let candidate = ties[i].1;
                let order = link_order(expander, &interner, &candidate);
                if order < best_order {
                    best = candidate;
                    best_order = order;
                }
                i += 1;
            }
            interner.set_payload(id, best);
        }

        // Resolve this level's violations deterministically: for each
        // property take the lexicographically smallest counterexample. The
        // full `Counterexample` (property clone, witness move) is built
        // only for the winner.
        for (idx, slot) in found.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let mut best: Option<(Trace, usize, String)> = None;
            for v in violations.iter().filter(|v| v.property == idx) {
                let mut inputs = path_to(expander, &interner, v.parent);
                if let Some(edge) = v.edge {
                    let mut prev_key = Vec::new();
                    interner.copy_key(v.parent, &mut prev_key);
                    inputs.push(expander.edge_step(&prev_key, edge));
                }
                let violation_instant = if v.edge.is_some() {
                    inputs.len().saturating_sub(1)
                } else {
                    inputs.len()
                };
                let better = match &best {
                    None => true,
                    Some((b_inputs, _, b_witness)) => {
                        trace_order(&inputs, &v.witness) < trace_order(b_inputs, b_witness)
                    }
                };
                if better {
                    best = Some((inputs, violation_instant, v.witness.clone()));
                }
            }
            if let Some((inputs, violation_instant, witness)) = best {
                *slot = Some(Counterexample {
                    property: properties[idx].clone(),
                    inputs,
                    violation_instant,
                    witness,
                });
            }
        }

        depth += 1;
        frontier = next;
    }

    if obs_enabled {
        c_steals.add(steal_count.load(std::sync::atomic::Ordering::Relaxed) as u64);
        let monitored = expander.monitored_properties();
        if monitor_steps > 0 && !monitored.is_empty() {
            let per_property = (monitor_steps / monitored.len()) as u64;
            for name in &monitored {
                obs.counter(&format!("engine.monitor_steps.{name}"))
                    .add(per_property);
            }
        }
        obs_span.attr("states", interner.len());
        obs_span.attr("transitions", transitions);
        obs_span.attr("depth", depth);
        obs_span.attr("truncated", truncated);
    }
    drop(obs_span);

    let stats = ExplorationStats {
        states: interner.len(),
        transitions,
        infeasible,
        depth,
        workers: workers_used,
        truncated,
        peak_frontier,
        pruned,
        frontier_levels,
        memo_hits,
        memo_misses,
        widened,
        projected_slots: 0,
        reconcretized: 0,
    };
    let verdicts = properties
        .iter()
        .zip(found)
        .map(|(property, cex)| PropertyVerdict {
            property: property.clone(),
            verdict: match cex {
                Some(cex) => Verdict::Violated(cex),
                None if truncated => Verdict::PassedBounded { depth },
                None => Verdict::Proved,
            },
        })
        .collect();
    Ok(VerificationOutcome { verdicts, stats })
}

/// Drains work items and expands each through the expander, recording a
/// fatal error (without stopping: results are discarded on abort anyway,
/// and continuing keeps every mode's counters comparable) when an
/// expansion fails.
fn run_worker<E: Expander>(
    expander: &E,
    ctx: &mut E::Ctx,
    sink: &mut Sink<'_>,
    depth: usize,
    mut next_item: impl FnMut() -> Option<u32>,
) {
    let mut key_buf = Vec::new();
    while let Some(id) = next_item() {
        sink.parent = id;
        sink.depth = depth;
        sink.interner.copy_key(id, &mut key_buf);
        if let Err(error) = expander.expand(ctx, &key_buf, depth, sink) {
            sink.record_fatal(error);
        }
    }
}

/// Canonical encoding of a parent link's edge `(prev, input)` for the
/// same-depth tie-break (the initial state has no link to encode and is
/// never contested).
fn link_order<E: Expander>(
    expander: &E,
    interner: &StateInterner<ParentLink>,
    link: &ParentLink,
) -> Vec<u8> {
    let mut out = Vec::new();
    if link.prev == NO_PARENT {
        // The initial state's link is never contested (a rediscovery of the
        // root has depth 0, never the tie depth), but stay total.
        out.push(0xFF);
        return out;
    }
    let mut prev_key = Vec::new();
    interner.copy_key(link.prev, &mut prev_key);
    out.extend_from_slice(&prev_key);
    out.push(0xFF);
    step_order_bytes(&expander.edge_step(&prev_key, link.edge), &mut out);
    out
}

/// Reconstructs the input trace from the initial state to `id` by walking
/// the parent links and re-deriving each edge's input step.
fn path_to<E: Expander>(expander: &E, interner: &StateInterner<ParentLink>, id: u32) -> Trace {
    let mut steps = Vec::new();
    let mut prev_key = Vec::new();
    let mut cursor = id;
    loop {
        let link = interner.payload(cursor);
        if link.prev == NO_PARENT {
            break;
        }
        interner.copy_key(link.prev, &mut prev_key);
        steps.push(expander.edge_step(&prev_key, link.edge));
        cursor = link.prev;
    }
    steps.reverse();
    steps.into_iter().collect()
}

/// Canonical byte encoding of one input step, used for deterministic
/// ordering of exploration edges and counterexamples.
pub(crate) fn step_order_bytes(step: &TraceStep, out: &mut Vec<u8>) {
    for (name, value) in step.iter() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(value.to_string().as_bytes());
        out.push(1);
    }
    out.push(2);
}

/// A deterministic ordering key for counterexample selection within a
/// level.
pub(crate) fn trace_order(inputs: &Trace, witness: &str) -> (usize, Vec<u8>, String) {
    let mut bytes = Vec::new();
    for step in inputs.iter() {
        step_order_bytes(step, &mut bytes);
    }
    (inputs.len(), bytes, witness.to_string())
}
