//! The past-time LTL property language: surface syntax, AST and reference
//! trace semantics.
//!
//! Properties are *safety invariants*: a formula of past-time LTL is
//! evaluated at every instant of every execution, and the property is
//! violated at the first instant where the formula is false. The surface
//! syntax (see `docs/PROPERTIES.md` for the full reference manual) is
//!
//! ```text
//! property  = [ "always" | "never" ] formula
//! formula   = f "implies" f | f "implies" f "within" k
//!           | f "or" f | f "and" f | f "since" f
//!           | "not" f | "once" f | "previously" f | "historically" f
//!           | "(" formula ")" | "true" | "false"
//!           | SIGNAL | "present" "(" SIGNAL ")" | "raised" "(" PATTERN ")"
//! ```
//!
//! Atoms observe one resolved instant: a bare `SIGNAL` is true when the
//! signal is present with a `true`-ish value, `present(S)` when it is
//! present with any value, and `raised(P)` when any signal matching the
//! glob pattern `P` is present and true. The past operators (`previously`,
//! `once`, `historically`, `since`) look backwards only, so every formula
//! can be checked by a finite-state monitor automaton
//! ([`crate::monitor::LtlMonitor`]) whose registers live in the explored
//! [`crate::State`] — exactly like the built-in bounded-response register.
//!
//! [`eval`] implements the *reference semantics*: a brute-force recursive
//! evaluator over a concrete trace prefix, with no registers. The compiled
//! monitor is cross-validated against it property-based tests; the two must
//! agree on every formula and every trace.
//!
//! ```
//! use polyverify::ltl::LtlProperty;
//!
//! let property = LtlProperty::parse("always (Alarm implies once Deadline)")?;
//! assert_eq!(property.expr(), "always (Alarm implies once Deadline)");
//! # Ok::<(), polyverify::ltl::ParseError>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};
use signal_moc::trace::TraceStep;

use crate::property::{raised_signal, signal_true};

/// A past-time LTL formula over the signals of one resolved instant.
///
/// Constructed by [`LtlProperty::parse`] from the surface syntax, or
/// programmatically through the builder methods ([`Formula::signal`],
/// [`Formula::within`], ...). [`fmt::Display`] renders a formula back to
/// the surface syntax; parsing the rendering yields the same tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Formula {
    /// The constant `true` or `false`.
    Const(bool),
    /// The named signal is present with a `true`-ish value at this instant.
    Signal(String),
    /// The named signal is present (with any value) at this instant.
    Present(String),
    /// Some signal matching the glob pattern (leading/trailing `*`, as in
    /// [`crate::Property::NeverRaised`]) is present and true at this
    /// instant.
    Raised(String),
    /// Logical negation.
    Not(Box<Formula>),
    /// Logical conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Logical disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Logical implication (`a implies b` is `not a or b`).
    Implies(Box<Formula>, Box<Formula>),
    /// `previously f`: `f` held at the previous instant (false at the first
    /// instant).
    Previously(Box<Formula>),
    /// `once f`: `f` held at some instant so far (including this one).
    Once(Box<Formula>),
    /// `historically f`: `f` held at every instant so far (including this
    /// one).
    Historically(Box<Formula>),
    /// `a since b`: `b` held at some past-or-present instant, and `a` has
    /// held at every instant after it (up to and including this one).
    Since(Box<Formula>, Box<Formula>),
    /// `trigger implies response within k`: the bounded-response deadline
    /// automaton. A trigger instant (trigger true, response not true) with
    /// no deadline already pending arms a deadline `k` instants out; a
    /// response instant discharges it; the formula is false exactly at the
    /// instants where a pending deadline expires unanswered.
    Within {
        /// The formula whose truth starts the deadline.
        trigger: Box<Formula>,
        /// The formula that must answer within the bound.
        response: Box<Formula>,
        /// Maximum number of instants between trigger and response (`0`
        /// requires a same-instant response).
        bound: u32,
    },
}

impl Formula {
    /// Atom: `name` is present and true at this instant.
    pub fn signal(name: impl Into<String>) -> Self {
        Formula::Signal(name.into())
    }

    /// Atom: `name` is present (with any value) at this instant.
    pub fn present(name: impl Into<String>) -> Self {
        Formula::Present(name.into())
    }

    /// Atom: some signal matching `pattern` is present and true.
    pub fn raised(pattern: impl Into<String>) -> Self {
        Formula::Raised(pattern.into())
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        Formula::Not(Box::new(f))
    }

    /// Logical conjunction.
    pub fn and(a: Formula, b: Formula) -> Self {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Logical disjunction.
    pub fn or(a: Formula, b: Formula) -> Self {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Logical implication.
    pub fn implies(a: Formula, b: Formula) -> Self {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// The `previously` operator.
    pub fn previously(f: Formula) -> Self {
        Formula::Previously(Box::new(f))
    }

    /// The `once` operator.
    pub fn once(f: Formula) -> Self {
        Formula::Once(Box::new(f))
    }

    /// The `historically` operator.
    pub fn historically(f: Formula) -> Self {
        Formula::Historically(Box::new(f))
    }

    /// The `since` operator.
    pub fn since(a: Formula, b: Formula) -> Self {
        Formula::Since(Box::new(a), Box::new(b))
    }

    /// The bounded-response sugar `trigger implies response within bound`.
    pub fn within(trigger: Formula, response: Formula, bound: u32) -> Self {
        Formula::Within {
            trigger: Box::new(trigger),
            response: Box::new(response),
            bound,
        }
    }

    /// Number of monitor registers a compiled monitor needs for this
    /// formula: one per temporal operator.
    pub fn temporal_count(&self) -> usize {
        match self {
            Formula::Const(_) | Formula::Signal(_) | Formula::Present(_) | Formula::Raised(_) => 0,
            Formula::Not(a) => a.temporal_count(),
            Formula::Previously(a) | Formula::Once(a) | Formula::Historically(a) => {
                1 + a.temporal_count()
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.temporal_count() + b.temporal_count()
            }
            Formula::Since(a, b) => 1 + a.temporal_count() + b.temporal_count(),
            Formula::Within {
                trigger, response, ..
            } => 1 + trigger.temporal_count() + response.temporal_count(),
        }
    }

    /// Precedence level used by the renderer (higher binds tighter).
    fn precedence(&self) -> u8 {
        match self {
            Formula::Implies(..) | Formula::Within { .. } => 0,
            Formula::Or(..) => 1,
            Formula::And(..) => 2,
            Formula::Since(..) => 3,
            Formula::Not(_)
            | Formula::Previously(_)
            | Formula::Once(_)
            | Formula::Historically(_) => 4,
            Formula::Const(_) | Formula::Signal(_) | Formula::Present(_) | Formula::Raised(_) => 5,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = self.precedence();
        if prec < min {
            write!(f, "(")?;
        }
        match self {
            Formula::Const(b) => write!(f, "{b}")?,
            Formula::Signal(name) => write!(f, "{name}")?,
            Formula::Present(name) => write!(f, "present({name})")?,
            Formula::Raised(pattern) => write!(f, "raised({pattern})")?,
            Formula::Not(a) => {
                write!(f, "not ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Previously(a) => {
                write!(f, "previously ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Once(a) => {
                write!(f, "once ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Historically(a) => {
                write!(f, "historically ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Since(a, b) => {
                a.fmt_prec(f, 3)?;
                write!(f, " since ")?;
                b.fmt_prec(f, 4)?;
            }
            Formula::And(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, " and ")?;
                b.fmt_prec(f, 3)?;
            }
            Formula::Or(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " or ")?;
                b.fmt_prec(f, 2)?;
            }
            Formula::Implies(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " implies ")?;
                b.fmt_prec(f, 0)?;
            }
            Formula::Within {
                trigger,
                response,
                bound,
            } => {
                trigger.fmt_prec(f, 1)?;
                write!(f, " implies ")?;
                response.fmt_prec(f, 1)?;
                write!(f, " within {bound}")?;
            }
        }
        if prec < min {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A parsed property: the original expression text plus the *invariant*
/// formula that must hold at every instant (`never f` normalises to the
/// invariant `not f`; a bare formula is an implicit `always`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LtlProperty {
    expr: String,
    invariant: Formula,
}

impl LtlProperty {
    /// Parses a property from the surface syntax.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] carrying the offending byte span of the
    /// source text; its [`fmt::Display`] rendering points a caret at the
    /// error position.
    ///
    /// ```
    /// use polyverify::ltl::LtlProperty;
    ///
    /// let err = LtlProperty::parse("always (Deadline implies").unwrap_err();
    /// assert!(err.to_string().contains('^'));
    /// ```
    pub fn parse(source: &str) -> Result<Self, ParseError> {
        Parser::new(source)?.property()
    }

    /// A property requiring `invariant` at every instant, rendered as
    /// `always <invariant>`.
    pub fn always(invariant: Formula) -> Self {
        Self {
            expr: format!("always {invariant}"),
            invariant,
        }
    }

    /// A property forbidding `formula` at every instant, rendered as
    /// `never <formula>` (the invariant is the negation).
    pub fn never(formula: Formula) -> Self {
        Self {
            expr: format!("never {formula}"),
            invariant: Formula::not(formula),
        }
    }

    /// The property expression as written (or as rendered by the
    /// constructors).
    pub fn expr(&self) -> &str {
        &self.expr
    }

    /// The invariant formula checked at every instant.
    pub fn invariant(&self) -> &Formula {
        &self.invariant
    }
}

impl fmt::Display for LtlProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)
    }
}

/// Reference trace semantics: the value of `formula` at instant `t` of the
/// resolved trace prefix `steps[..=t]`, computed by brute-force recursion
/// with no monitor state. The compiled [`crate::monitor::LtlMonitor`] must
/// agree with this function on every formula and trace (property-based
/// tests pin the equivalence).
///
/// # Panics
///
/// Panics when `t >= steps.len()`.
pub fn eval(formula: &Formula, steps: &[TraceStep], t: usize) -> bool {
    assert!(t < steps.len(), "instant {t} out of range");
    match formula {
        Formula::Const(b) => *b,
        Formula::Signal(name) => signal_true(&steps[t], name),
        Formula::Present(name) => steps[t].is_present(name),
        Formula::Raised(pattern) => raised_signal(pattern, &steps[t]).is_some(),
        Formula::Not(a) => !eval(a, steps, t),
        Formula::And(a, b) => eval(a, steps, t) && eval(b, steps, t),
        Formula::Or(a, b) => eval(a, steps, t) || eval(b, steps, t),
        Formula::Implies(a, b) => !eval(a, steps, t) || eval(b, steps, t),
        Formula::Previously(a) => t > 0 && eval(a, steps, t - 1),
        Formula::Once(a) => (0..=t).any(|j| eval(a, steps, j)),
        Formula::Historically(a) => (0..=t).all(|j| eval(a, steps, j)),
        Formula::Since(a, b) => {
            (0..=t).any(|j| eval(b, steps, j) && (j + 1..=t).all(|i| eval(a, steps, i)))
        }
        Formula::Within {
            trigger,
            response,
            bound,
        } => {
            // Forward scan of the deadline automaton over the prefix:
            // `pending = Some(k)` means an unanswered trigger's deadline
            // passes in `k` more instants.
            let mut pending: Option<u32> = None;
            let mut holds = true;
            for i in 0..=t {
                let trig = eval(trigger, steps, i);
                let resp = eval(response, steps, i);
                let mut expired = false;
                if let Some(k) = pending {
                    pending = if resp {
                        None
                    } else if k == 1 {
                        expired = true;
                        None
                    } else {
                        Some(k - 1)
                    };
                }
                if !expired && trig && !resp && pending.is_none() {
                    if *bound == 0 {
                        expired = true;
                    } else {
                        pending = Some(*bound);
                    }
                }
                holds = !expired;
            }
            holds
        }
    }
}

/// The first instant of `steps` at which `invariant` is false, by the
/// reference semantics of [`eval`] (`None` when the invariant holds
/// throughout).
pub fn first_violation(invariant: &Formula, steps: &[TraceStep]) -> Option<usize> {
    (0..steps.len()).find(|&t| !eval(invariant, steps, t))
}

/// A syntax error in a property expression, with the offending byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte range of the offending token (or the end of input).
    pub span: (usize, usize),
    /// The source text the span refers to.
    pub source: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (start, end) = self.span;
        writeln!(f, "{} at {}..{}", self.message, start, end)?;
        writeln!(f, "  {}", self.source)?;
        let width = end.saturating_sub(start).max(1);
        write!(f, "  {}{}", " ".repeat(start), "^".repeat(width))
    }
}

impl std::error::Error for ParseError {}

/// One lexical token of the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Int(u32),
    LParen,
    RParen,
    Always,
    Never,
    Not,
    And,
    Or,
    Implies,
    Since,
    Once,
    Previously,
    Historically,
    Within,
    Present,
    Raised,
    True,
    False,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(name) => format!("`{name}`"),
            Token::Int(n) => format!("`{n}`"),
            Token::LParen => "`(`".to_string(),
            Token::RParen => "`)`".to_string(),
            Token::Always => "`always`".to_string(),
            Token::Never => "`never`".to_string(),
            Token::Not => "`not`".to_string(),
            Token::And => "`and`".to_string(),
            Token::Or => "`or`".to_string(),
            Token::Implies => "`implies`".to_string(),
            Token::Since => "`since`".to_string(),
            Token::Once => "`once`".to_string(),
            Token::Previously => "`previously`".to_string(),
            Token::Historically => "`historically`".to_string(),
            Token::Within => "`within`".to_string(),
            Token::Present => "`present`".to_string(),
            Token::Raised => "`raised`".to_string(),
            Token::True => "`true`".to_string(),
            Token::False => "`false`".to_string(),
        }
    }
}

/// Characters of identifier / pattern tokens: signal names use letters,
/// digits, `_` and `.`; glob patterns additionally use `*`.
fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '*'
}

/// A token with its byte span in the source text.
type SpannedToken = (Token, (usize, usize));

fn lex(source: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '(' {
            tokens.push((Token::LParen, (i, i + 1)));
            i += 1;
            continue;
        }
        if c == ')' {
            tokens.push((Token::RParen, (i, i + 1)));
            i += 1;
            continue;
        }
        if is_word_char(c) {
            let start = i;
            while i < bytes.len() && is_word_char(bytes[i] as char) {
                i += 1;
            }
            let word = &source[start..i];
            let span = (start, i);
            let token = match word {
                "always" => Token::Always,
                "never" => Token::Never,
                "not" => Token::Not,
                "and" => Token::And,
                "or" => Token::Or,
                "implies" => Token::Implies,
                "since" => Token::Since,
                "once" => Token::Once,
                "previously" => Token::Previously,
                "historically" => Token::Historically,
                "within" => Token::Within,
                "present" => Token::Present,
                "raised" => Token::Raised,
                "true" => Token::True,
                "false" => Token::False,
                _ if word.chars().all(|c| c.is_ascii_digit()) => {
                    let value = word.parse().map_err(|_| ParseError {
                        message: format!("integer `{word}` is out of range"),
                        span,
                        source: source.to_string(),
                    })?;
                    Token::Int(value)
                }
                _ => Token::Ident(word.to_string()),
            };
            tokens.push((token, span));
            continue;
        }
        return Err(ParseError {
            message: format!("unexpected character `{c}`"),
            span: (i, i + 1),
            source: source.to_string(),
        });
    }
    Ok(tokens)
}

/// Recursive-descent parser over the token stream.
struct Parser {
    source: String,
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self, ParseError> {
        Ok(Self {
            source: source.to_string(),
            tokens: lex(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Span of the current token, or a zero-width span at end of input.
    fn here(&self) -> (usize, usize) {
        match self.tokens.get(self.pos) {
            Some((_, span)) => *span,
            None => {
                let end = self.source.len();
                (end, end)
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.here(),
            source: self.source.clone(),
        }
    }

    fn expected(&self, what: &str) -> ParseError {
        match self.tokens.get(self.pos) {
            Some((token, _)) => self.error(format!("expected {what}, found {}", token.describe())),
            None => self.error(format!("expected {what}, found end of input")),
        }
    }

    fn property(mut self) -> Result<LtlProperty, ParseError> {
        let invariant = if self.eat(&Token::Always) {
            self.formula()?
        } else if self.eat(&Token::Never) {
            Formula::not(self.formula()?)
        } else {
            // A bare formula is an implicit `always`.
            self.formula()?
        };
        if self.pos < self.tokens.len() {
            return Err(self.expected("end of input"));
        }
        Ok(LtlProperty {
            expr: self.source.trim().to_string(),
            invariant,
        })
    }

    /// A complete formula; a trailing `within` here is not attached to a
    /// bounded response and gets a dedicated error.
    fn formula(&mut self) -> Result<Formula, ParseError> {
        let formula = self.implication()?;
        if self.peek() == Some(&Token::Within) {
            return Err(self.error(
                "`within` only follows a bounded response `trigger implies response within N`",
            ));
        }
        Ok(formula)
    }

    /// `implication := disjunction [ "implies" implication [ "within" INT ] ]`
    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat(&Token::Implies) {
            let rhs = self.implication()?;
            if self.eat(&Token::Within) {
                let bound = self.integer()?;
                return Ok(Formula::within(lhs, rhs, bound));
            }
            return Ok(Formula::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.conjunction()?;
        while self.eat(&Token::Or) {
            lhs = Formula::or(lhs, self.conjunction()?);
        }
        Ok(lhs)
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.since_level()?;
        while self.eat(&Token::And) {
            lhs = Formula::and(lhs, self.since_level()?);
        }
        Ok(lhs)
    }

    fn since_level(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat(&Token::Since) {
            lhs = Formula::since(lhs, self.unary()?);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat(&Token::Not) {
            return Ok(Formula::not(self.unary()?));
        }
        if self.eat(&Token::Once) {
            return Ok(Formula::once(self.unary()?));
        }
        if self.eat(&Token::Previously) {
            return Ok(Formula::previously(self.unary()?));
        }
        if self.eat(&Token::Historically) {
            return Ok(Formula::historically(self.unary()?));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        let span = self.here();
        match self.advance() {
            Some(Token::LParen) => {
                let inner = self.formula()?;
                if !self.eat(&Token::RParen) {
                    return Err(self.expected("`)`"));
                }
                Ok(inner)
            }
            Some(Token::True) => Ok(Formula::Const(true)),
            Some(Token::False) => Ok(Formula::Const(false)),
            Some(Token::Present) => {
                let name = self.parenthesized_word("signal name")?;
                if name.contains('*') {
                    return Err(ParseError {
                        message: "glob patterns are only allowed in raised(...)".to_string(),
                        span,
                        source: self.source.clone(),
                    });
                }
                Ok(Formula::present(name))
            }
            Some(Token::Raised) => Ok(Formula::raised(self.parenthesized_word("glob pattern")?)),
            Some(Token::Ident(name)) => {
                if name.contains('*') {
                    return Err(ParseError {
                        message: format!(
                            "glob pattern `{name}` is only allowed in raised(...); \
                             use raised({name})"
                        ),
                        span,
                        source: self.source.clone(),
                    });
                }
                Ok(Formula::signal(name))
            }
            Some(other) => Err(ParseError {
                message: format!("expected a formula, found {}", other.describe()),
                span,
                source: self.source.clone(),
            }),
            None => Err(ParseError {
                message: "expected a formula, found end of input".to_string(),
                span,
                source: self.source.clone(),
            }),
        }
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        match self.peek() {
            Some(Token::Int(_)) => {
                let Some(Token::Int(value)) = self.advance() else {
                    unreachable!("peeked an integer");
                };
                Ok(value)
            }
            _ => Err(self.expected("an integer bound")),
        }
    }

    /// `( WORD )` — the argument of `present(...)` / `raised(...)`.
    fn parenthesized_word(&mut self, what: &str) -> Result<String, ParseError> {
        if !self.eat(&Token::LParen) {
            return Err(self.expected("`(`"));
        }
        let word = match self.peek() {
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(word)) = self.advance() else {
                    unreachable!("peeked an identifier");
                };
                word
            }
            _ => return Err(self.expected(what)),
        };
        if !self.eat(&Token::RParen) {
            return Err(self.expected("`)`"));
        }
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::value::Value;

    fn parse(src: &str) -> LtlProperty {
        LtlProperty::parse(src).unwrap_or_else(|e| panic!("parse `{src}`:\n{e}"))
    }

    #[test]
    fn parses_the_issue_grammar() {
        assert_eq!(
            parse("never raised(*Alarm*)").invariant(),
            &Formula::not(Formula::raised("*Alarm*"))
        );
        assert_eq!(
            parse("always (Deadline implies Resume within 2)").invariant(),
            &Formula::within(Formula::signal("Deadline"), Formula::signal("Resume"), 2)
        );
        assert_eq!(
            parse("always (Alarm implies once Deadline)").invariant(),
            &Formula::implies(
                Formula::signal("Alarm"),
                Formula::once(Formula::signal("Deadline"))
            )
        );
        assert_eq!(
            parse("always (Run implies (not Stop since Start))").invariant(),
            &Formula::implies(
                Formula::signal("Run"),
                Formula::since(
                    Formula::not(Formula::signal("Stop")),
                    Formula::signal("Start")
                )
            )
        );
        // A bare formula is an implicit `always`.
        assert_eq!(
            parse("present(tick) or true").invariant(),
            &Formula::or(Formula::present("tick"), Formula::Const(true))
        );
    }

    #[test]
    fn precedence_binds_not_tighter_than_and_tighter_than_or() {
        assert_eq!(
            parse("not a and b or c").invariant(),
            &Formula::or(
                Formula::and(Formula::not(Formula::signal("a")), Formula::signal("b")),
                Formula::signal("c")
            )
        );
        // `implies` is right-associative and loosest.
        assert_eq!(
            parse("a implies b implies c").invariant(),
            &Formula::implies(
                Formula::signal("a"),
                Formula::implies(Formula::signal("b"), Formula::signal("c"))
            )
        );
        // `since` is left-associative and binds tighter than `and`.
        assert_eq!(
            parse("a since b since c and d").invariant(),
            &Formula::and(
                Formula::since(
                    Formula::since(Formula::signal("a"), Formula::signal("b")),
                    Formula::signal("c")
                ),
                Formula::signal("d")
            )
        );
    }

    #[test]
    fn rendering_round_trips() {
        for src in [
            "never raised(*Alarm*)",
            "always (Deadline implies Resume within 2)",
            "always (a implies b within 0)",
            "not a and b or c",
            "a implies b implies c",
            "(a or b) and not (c since d)",
            "historically (previously a implies once b)",
            "always (Run implies (not Stop since Start))",
        ] {
            let parsed = parse(src);
            let rendered = format!("always {}", parsed.invariant());
            let reparsed = parse(&rendered);
            assert_eq!(
                parsed.invariant(),
                reparsed.invariant(),
                "`{src}` -> `{rendered}`"
            );
        }
    }

    #[test]
    fn errors_carry_the_offending_span() {
        let err = LtlProperty::parse("always (Deadline implies").unwrap_err();
        assert!(err.message.contains("expected a formula"), "{err}");
        assert_eq!(err.span, (err.source.len(), err.source.len()), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains('^'), "{rendered}");

        let err = LtlProperty::parse("always Deadline nonsense here").unwrap_err();
        assert!(err.message.contains("expected end of input"), "{err}");
        assert_eq!(&err.source[err.span.0..err.span.1], "nonsense");

        let err = LtlProperty::parse("*Alarm* and b").unwrap_err();
        assert!(err.message.contains("raised("), "{err}");

        let err = LtlProperty::parse("a within 3").unwrap_err();
        assert!(err.message.contains("bounded response"), "{err}");

        let err = LtlProperty::parse("a ? b").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");

        let err = LtlProperty::parse("always (a implies b within x)").unwrap_err();
        assert!(err.message.contains("integer bound"), "{err}");
    }

    fn step(pairs: &[(&str, bool)]) -> TraceStep {
        let mut s = TraceStep::new();
        for (name, value) in pairs {
            s.set(*name, Value::Bool(*value));
        }
        s
    }

    #[test]
    fn reference_semantics_of_the_past_operators() {
        let steps = vec![
            step(&[("a", true)]),
            step(&[("b", true)]),
            step(&[]),
            step(&[("a", true), ("b", true)]),
        ];
        let a = Formula::signal("a");
        let b = Formula::signal("b");
        // previously
        let prev_a = Formula::previously(a.clone());
        assert!(!eval(&prev_a, &steps, 0));
        assert!(eval(&prev_a, &steps, 1));
        assert!(!eval(&prev_a, &steps, 2));
        // once / historically
        let once_b = Formula::once(b.clone());
        assert!(!eval(&once_b, &steps, 0));
        assert!(eval(&once_b, &steps, 1));
        assert!(eval(&once_b, &steps, 3));
        let hist = Formula::historically(Formula::or(a.clone(), b.clone()));
        assert!(eval(&hist, &steps, 1));
        assert!(!eval(&hist, &steps, 2));
        assert!(!eval(&hist, &steps, 3));
        // since: `not a since b` — b seen, and no a after it.
        let since = Formula::since(Formula::not(a.clone()), b.clone());
        assert!(!eval(&since, &steps, 0));
        assert!(eval(&since, &steps, 1));
        assert!(eval(&since, &steps, 2));
        assert!(eval(&since, &steps, 3), "b holds again at instant 3");
    }

    #[test]
    fn reference_semantics_of_within() {
        let trig = Formula::signal("t");
        let resp = Formula::signal("r");
        let w = |bound| Formula::within(trig.clone(), resp.clone(), bound);
        // trigger at 0, response at 2: within 2 holds, within 1 fails at 1.
        let steps = vec![step(&[("t", true)]), step(&[]), step(&[("r", true)])];
        assert!(eval(&w(2), &steps, 0));
        assert!(eval(&w(2), &steps, 1));
        assert!(eval(&w(2), &steps, 2));
        assert!(!eval(&w(1), &steps, 1));
        assert_eq!(first_violation(&w(1), &steps), Some(1));
        assert_eq!(first_violation(&w(2), &steps), None);
        // bound 0 requires a same-instant response.
        let both = vec![step(&[("t", true), ("r", true)])];
        assert!(eval(&w(0), &both, 0));
        let alone = vec![step(&[("t", true)])];
        assert!(!eval(&w(0), &alone, 0));
    }

    #[test]
    fn display_parenthesizes_only_where_needed() {
        assert_eq!(
            parse("(a or b) and c").invariant().to_string(),
            "(a or b) and c"
        );
        assert_eq!(
            parse("a or (b and c)").invariant().to_string(),
            "a or b and c"
        );
        assert_eq!(
            parse("always (a implies b within 4)")
                .invariant()
                .to_string(),
            "a implies b within 4"
        );
    }
}
