//! `polyverify` — exhaustive state-space verification of flat SIGNAL
//! processes with counterexample replay.
//!
//! Bounded co-simulation (the `polysim` crate) runs a handful of
//! hyper-periods and *counts* alarm instants; it can miss violations that
//! only show up under input sequences the schedule never produces. This
//! crate closes that gap with an explicit-state model checker in the spirit
//! of the real-time AADL model-checking line of work (Berthomieu et al.):
//!
//! * a canonical execution [`State`] — the memory of every
//!   `delay`/`cell` operator plus the scheduler phase — hashed through a
//!   byte-level encoding ([`state::StateKey`]);
//! * a successor generator that enumerates the feasible input valuations of
//!   an instant, pruned by the clock calculus (synchronisation classes,
//!   exclusions and the sub-clock hierarchy);
//! * a parallel breadth-first reachability engine with a sharded seen-set
//!   (scale knob: [`VerifyOptions::workers`]) and a depth-bounded fallback
//!   for products too large to close;
//! * a past-time LTL property language ([`ltl`]) — `always`, `never`,
//!   `once`, `since`, `previously`, `historically`, the bounded-response
//!   sugar `within <k>`, and atoms over signal presence/value — compiled
//!   into deterministic monitor automata ([`monitor::LtlMonitor`]) whose
//!   registers live in the explored state; the built-in shapes
//!   ([`Property::NeverRaised`], [`Property::BoundedResponse`],
//!   [`Property::EndToEndResponse`]) are canonical desugarings into this
//!   one monitor path, and [`Property::DeadlockFree`] keeps its dedicated
//!   successor-existence check. Violations come back as concrete
//!   [`Counterexample`] traces that replay deterministically in
//!   [`polysim::Simulator`] for independent confirmation. The surface
//!   syntax is documented in `docs/PROPERTIES.md`;
//! * a compositional layer ([`ProductVerifier`]) exploring the synchronous
//!   product of several scheduled threads with event-port connections
//!   ([`PortLink`]) treated as synchronising actions, so cross-thread
//!   latency properties become checkable — with counterexamples that
//!   project back to per-thread traces and replay in a lockstep
//!   co-simulation ([`LockstepCoSim`]);
//! * an interval abstraction over delay memories ([`domain`],
//!   [`Domain::Interval`]) that widens unobservable monotone counters at a
//!   saturation threshold — and, with
//!   [`VerifyOptions::with_project_counters`], drops them from the state
//!   key — so unbounded-counter spaces close with a genuine
//!   [`Verdict::Proved`]. Strengthen-only: abstract counterexamples are
//!   re-concretized and must replay before being reported, and a failed
//!   replay falls back to the fully concrete exploration
//!   (`docs/SYMBOLIC.md`).
//!
//! # Quick start
//!
//! ```
//! use polyverify::{InputSpace, Property, Verifier, VerifyOptions};
//! use signal_moc::builder::ProcessBuilder;
//! use signal_moc::expr::Expr;
//! use signal_moc::value::ValueType;
//!
//! // Alarm := Deadline and not Resume — reachable, so verification fails
//! // and the counterexample replays in the simulator.
//! let mut b = ProcessBuilder::new("watch");
//! b.input("Deadline", ValueType::Boolean);
//! b.input("Resume", ValueType::Boolean);
//! b.output("Alarm", ValueType::Boolean);
//! b.define("Alarm", Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))));
//! b.synchronize(&["Deadline", "Resume", "Alarm"]);
//! let process = b.build()?;
//!
//! let verifier = Verifier::new(&process, VerifyOptions::default().with_workers(2))?;
//! let outcome = verifier.verify(
//!     &InputSpace::Free,
//!     &[Property::NeverRaised("*Alarm*".into())],
//! )?;
//! let (_, cex) = outcome.violations().next().expect("alarm reachable");
//! assert!(cex.replay(&process)?.reproduced);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counterexample;
pub mod domain;
mod engine;
pub mod explore;
pub mod inject;
pub mod ltl;
pub mod monitor;
pub mod product;
pub mod property;
pub mod state;

pub use affine_clocks::DispatchFeasibility;
pub use counterexample::{Counterexample, ReplayReport};
pub use domain::{AbstractState, AbstractValue, Domain, SlotAbstraction, SlotPlan};
pub use explore::{
    ExplorationStats, FrontierMode, InputSpace, PropertyVerdict, Verdict, VerificationOutcome,
    Verifier, VerifyError, VerifyOptions,
};
pub use inject::{
    inject_connection_latency, inject_counter_drift, inject_deadline_overrun,
    inject_dispatch_jitter, inject_dropped_delivery, inject_schedule_corruption,
    InjectedCorruptionFault, InjectedDriftFault, InjectedDropFault, InjectedFault,
    InjectedJitterFault, InjectedLinkFault,
};
pub use ltl::{Formula, LtlProperty, ParseError};
pub use monitor::{LtlMonitor, MonitorStep};
pub use polyobs::{CollectionMode, Collector, JsonLinesSink, ProgressReporter};
pub use product::{
    CoSimFailure, LockstepCoSim, PortLink, ProductComponent, ProductSystem, ProductVerifier,
};
pub use property::Property;
pub use state::{State, StateKey};
