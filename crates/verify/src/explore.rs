//! The explicit-state reachability frontend for one flat SIGNAL process:
//! feasible-successor enumeration (reusing the clock calculus, optionally
//! pruned by an affine dispatch-feasibility oracle) over the shared
//! depth-stratified exploration core (`crate::engine`) — interned states,
//! incremental key hashing, and work-stealing frontier queues.

use std::collections::BTreeMap;

use affine_clocks::DispatchFeasibility;
use serde::{Deserialize, Serialize};
use signal_moc::clockcalc::ClockCalculus;
use signal_moc::error::SignalError;
use signal_moc::eval::Evaluator;
use signal_moc::process::Process;
use signal_moc::trace::{Trace, TraceStep};
use signal_moc::value::{Value, ValueType};

use crate::counterexample::Counterexample;
use crate::domain::{Domain, SlotAbstraction};
use crate::engine::{self, Expander, Sink};
use crate::monitor::{compile_properties, CompiledProperty};
use crate::property::Property;
use crate::state::{KeyCodec, State};

/// How a breadth-first level is distributed over the worker threads.
///
/// Both modes expand exactly the same states and produce bit-identical
/// verdicts, counterexamples and counters — every merge in the engine is
/// tie-broken by canonical key bytes, never by arrival order. The modes
/// differ only in wall-clock behaviour on skewed frontiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrontierMode {
    /// Split the level into contiguous chunks, one per worker. A worker
    /// whose chunk happens to hold the expensive states finishes last while
    /// the others idle.
    Barrier,
    /// Per-worker deques with work stealing: each worker drains its own
    /// queue and steals from the others when empty, so skewed levels stay
    /// balanced. The default.
    #[default]
    WorkStealing,
}

/// Tuning knobs of the exploration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOptions {
    /// Number of worker threads expanding each breadth-first level (the
    /// scale knob of the parallel engine). Clamped to at least 1.
    pub workers: usize,
    /// Maximum exploration depth (number of instants); `None` explores until
    /// the state space closes.
    pub depth_bound: Option<usize>,
    /// Cap on the number of distinct states kept in the seen-set; once
    /// reached the engine stops expanding and reports a bounded verdict.
    /// The cap is checked between breadth-first levels (never mid-level, so
    /// results stay deterministic under any worker count); the final level
    /// may therefore overshoot it by one level's worth of successors.
    pub max_states: usize,
    /// Values enumerated for free integer inputs.
    pub int_domain: Vec<i64>,
    /// Values enumerated for free real inputs.
    pub real_domain: Vec<f64>,
    /// Cap on the number of distinct input valuations enumerated per instant
    /// in free mode; exceeding it truncates the enumeration (and downgrades
    /// `Proved` to a bounded verdict).
    pub max_branching: usize,
    /// Number of shards of the concurrent seen-set (the state interner).
    pub shards: usize,
    /// How each level is distributed over the workers; see [`FrontierMode`].
    pub frontier: FrontierMode,
    /// Initial capacity (in states) of the state interner; it grows beyond
    /// this on demand. Clamped to at least 1.
    pub interner_capacity: usize,
    /// Enables the clock-calculus pruning paths: free-mode candidate
    /// filtering through the dispatch-feasibility [`VerifyOptions::oracle`]
    /// and per-component step memoisation in the product verifier. The
    /// memoisation is always verdict-preserving; the oracle filtering is an
    /// *environment assumption* (see [`VerifyOptions::with_oracle`]).
    pub pruning: bool,
    /// Optional dispatch-feasibility oracle consulted (when
    /// [`VerifyOptions::pruning`] is on) before enumerating a free-mode
    /// candidate: a candidate making a signal present at an instant the
    /// oracle provably excludes is skipped. No effect in scheduled mode,
    /// where the inputs are already fixed.
    pub oracle: Option<DispatchFeasibility>,
    /// Telemetry collector receiving engine counters, gauges and per-level
    /// events. Defaults to noop (records nothing, costs nothing). The
    /// collection mode never affects verdicts, counterexamples or
    /// [`ExplorationStats`] — pinned by the determinism proptests in
    /// `tests/obs_determinism.rs`.
    pub collector: polyobs::Collector,
    /// The state-space domain: [`Domain::Concrete`] explores exact per-slot
    /// values; [`Domain::Interval`] widens isolated monotone counters at
    /// [`VerifyOptions::widen_threshold`] so unbounded-counter spaces can
    /// close with a genuine proof (see [`crate::domain`] and
    /// `docs/SYMBOLIC.md`). Abstract counterexamples are re-concretized and
    /// must replay before being reported; a failed replay falls back to the
    /// concrete exploration, so verdicts can only strengthen.
    pub domain: Domain,
    /// Under [`Domain::Interval`], additionally drop every abstractable
    /// counter slot from the canonical key entirely (the `⊤` projection)
    /// instead of only widening the monotone ones. No effect in the
    /// concrete domain.
    pub project_counters: bool,
    /// Saturation point of widened counter slots under
    /// [`Domain::Interval`]: values above it collapse to the abstract
    /// `≥ threshold`.
    pub widen_threshold: i64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            depth_bound: None,
            max_states: 1 << 20,
            int_domain: vec![0, 1],
            real_domain: vec![0.0, 1.0],
            max_branching: 256,
            shards: 16,
            frontier: FrontierMode::default(),
            interner_capacity: 4096,
            pruning: true,
            oracle: None,
            collector: polyobs::Collector::noop(),
            domain: Domain::Concrete,
            project_counters: false,
            widen_threshold: 8,
        }
    }
}

impl VerifyOptions {
    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the depth bound.
    pub fn with_depth_bound(mut self, bound: usize) -> Self {
        self.depth_bound = Some(bound);
        self
    }

    /// Removes the depth bound (explore until closure).
    pub fn unbounded(mut self) -> Self {
        self.depth_bound = None;
        self
    }

    /// Sets the seen-set state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states.max(1);
        self
    }

    /// Sets the frontier scheduling mode.
    pub fn with_frontier(mut self, frontier: FrontierMode) -> Self {
        self.frontier = frontier;
        self
    }

    /// Sets the interner's initial capacity (clamped to at least 1).
    pub fn with_interner_capacity(mut self, capacity: usize) -> Self {
        self.interner_capacity = capacity.max(1);
        self
    }

    /// Enables or disables the clock-calculus pruning paths (see
    /// [`VerifyOptions::pruning`]).
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Installs a dispatch-feasibility oracle for free-mode candidate
    /// pruning.
    ///
    /// **This is an environment assumption, not a plain optimisation**: the
    /// oracle restricts the explored input environment to valuations
    /// compatible with the exported affine dispatch clocks. Verdicts are
    /// relative to that assumption — a violation only reachable through an
    /// input the schedule can provably never produce will no longer be
    /// reported. Without an oracle (the default), `pruning` only gates the
    /// verdict-preserving product memoisation.
    pub fn with_oracle(mut self, oracle: DispatchFeasibility) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Installs a telemetry collector. Collection is purely observational:
    /// it never changes verdicts, counterexamples or stats.
    pub fn with_collector(mut self, collector: polyobs::Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Selects the exploration domain (see [`VerifyOptions::domain`]).
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Enables or disables counter projection under the interval domain
    /// (see [`VerifyOptions::project_counters`]).
    pub fn with_project_counters(mut self, project: bool) -> Self {
        self.project_counters = project;
        self
    }

    /// Sets the widening threshold of the interval domain (clamped to at
    /// least 1 so a saturated counter stays distinguishable from its
    /// initial value in the common `init 0` case).
    pub fn with_widen_threshold(mut self, threshold: i64) -> Self {
        self.widen_threshold = threshold.max(1);
        self
    }
}

/// The input space explored for a process.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpace {
    /// All feasible input valuations are enumerated at every instant —
    /// including the silent (all-absent) one, since autonomous behaviour
    /// (free-clocked constants, exclusion-gated outputs) can be observable
    /// even when every input is absent. Presence combinations are pruned by
    /// the clock calculus: synchronisation classes are all-or-nothing,
    /// mutually exclusive classes never co-fire, and a sub-clock is never
    /// present without its super-clock. Deadlock freedom asks for a feasible
    /// *non-silent* valuation (silent stuttering is not progress).
    Free,
    /// Inputs are driven by a scheduler-generated timing trace; the phase
    /// wraps around, so exploring until closure verifies the periodic system
    /// for unbounded time whenever the memory is finite.
    Scheduled(Trace),
}

/// The verdict of one property after exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The whole reachable state space was explored without a violation: the
    /// property holds for every execution of the input space.
    Proved,
    /// No violation was found up to the explored depth, but the exploration
    /// was bounded (depth bound, state cap or branching truncation): the
    /// property *passed* the bounded search, it was not proved. Every
    /// truncated exploration reports this variant — never [`Verdict::Proved`]
    /// — so a depth-bound fallback can never masquerade as a proof.
    PassedBounded {
        /// Number of instants fully explored.
        depth: usize,
    },
    /// The property is violated; the counterexample replays in the
    /// simulator.
    Violated(Counterexample),
}

impl Verdict {
    /// Returns `true` when the verdict is a violation.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// Returns `true` when no violation was found (proved or bounded).
    pub fn passed(&self) -> bool {
        !self.is_violated()
    }

    /// A one-line rendering for reports. A bounded pass is always rendered
    /// as `passed-bounded`, never as a proof (regression: truncated
    /// explorations must not read as "proved" in reports).
    pub fn summary(&self) -> String {
        match self {
            Verdict::Proved => "proved (state space exhausted)".to_string(),
            Verdict::PassedBounded { depth } => {
                format!("passed-bounded (no violation within {depth} instants; not a proof)")
            }
            Verdict::Violated(cex) => format!(
                "VIOLATED at instant {} ({})",
                cex.violation_instant, cex.witness
            ),
        }
    }
}

/// The verdict of one checked property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyVerdict {
    /// The property that was checked.
    pub property: Property,
    /// Its verdict.
    pub verdict: Verdict,
}

/// Counters describing one exploration run.
///
/// Every field is deterministic: the same model and options produce the
/// same stats under any worker count, frontier mode or telemetry
/// collection mode. Nondeterministic measurements (steal counts, timings,
/// rates) live in the [`VerifyOptions::collector`] instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplorationStats {
    /// Number of distinct states inserted in the seen-set.
    pub states: usize,
    /// Number of executed transitions (feasible successor steps).
    pub transitions: usize,
    /// Number of enumerated input valuations rejected by the evaluator.
    pub infeasible: usize,
    /// Number of instants fully explored (breadth-first levels expanded).
    pub depth: usize,
    /// Maximum worker threads actually exercised (bounded by the configured
    /// count and by the widest frontier — a scheduled exploration has
    /// frontier size 1 and therefore always runs sequentially).
    pub workers: usize,
    /// `true` when the exploration was cut short — by the depth bound, the
    /// state cap, a branching truncation, or an early stop once every
    /// checked property had a violation — in which case `Proved` verdicts
    /// are downgraded and the counters describe a partial search.
    pub truncated: bool,
    /// Largest breadth-first level encountered (states expanded in one
    /// instant) — the working-set high-water mark of the exploration.
    pub peak_frontier: usize,
    /// Number of candidate input valuations skipped by the
    /// dispatch-feasibility oracle (always 0 without an oracle).
    pub pruned: usize,
    /// Breadth-first frontier size at each explored level, in depth order
    /// (`frontier_levels[0]` is the initial frontier);
    /// [`ExplorationStats::peak_frontier`] is its maximum.
    pub frontier_levels: Vec<u32>,
    /// Component steps answered by the product verifier's per-component
    /// memo table (always 0 outside the product verifier or with
    /// memoisation disabled via [`VerifyOptions::pruning`]).
    pub memo_hits: usize,
    /// Component steps resolved through the evaluator by the product
    /// verifier — the memo misses (with memoisation disabled this counts
    /// every component step).
    pub memo_misses: usize,
    /// Memory slots rewritten to their abstract representative (saturated
    /// at the widening threshold or reset by projection) while
    /// canonicalising successors — always 0 in the concrete domain. The
    /// expansion multiset is worker-independent, so this count is
    /// deterministic like every other field.
    pub widened: usize,
    /// Number of memory slots dropped from the canonical key by counter
    /// projection (a static property of the analyzed model and options,
    /// not a per-transition count).
    pub projected_slots: usize,
    /// Number of abstract counterexamples re-concretized and replayed in
    /// the explicit simulator by the interval domain's soundness gate.
    pub reconcretized: usize,
}

/// Everything one [`Verifier::verify`] call learned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationOutcome {
    /// Per-property verdicts, in the order the properties were given.
    pub verdicts: Vec<PropertyVerdict>,
    /// Exploration counters.
    pub stats: ExplorationStats,
}

impl VerificationOutcome {
    /// Returns `true` when no checked property is violated.
    pub fn is_violation_free(&self) -> bool {
        self.verdicts.iter().all(|v| v.verdict.passed())
    }

    /// Returns `true` when every property was proved exhaustively.
    pub fn all_proved(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| matches!(v.verdict, Verdict::Proved))
    }

    /// The violated properties and their counterexamples.
    pub fn violations(&self) -> impl Iterator<Item = (&Property, &Counterexample)> {
        self.verdicts.iter().filter_map(|v| match &v.verdict {
            Verdict::Violated(cex) => Some((&v.property, cex)),
            _ => None,
        })
    }

    /// A compact multi-line rendering for reports and the CLI.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "explored {} states / {} transitions at depth {} ({} worker(s){}, peak frontier {})\n",
            self.stats.states,
            self.stats.transitions,
            self.stats.depth,
            self.stats.workers,
            if self.stats.truncated {
                ", truncated"
            } else {
                ", exhaustive"
            },
            self.stats.peak_frontier
        );
        if self.stats.memo_hits > 0 || self.stats.memo_misses > 0 {
            out.push_str(&format!(
                "  component memo: {} hits / {} misses\n",
                self.stats.memo_hits, self.stats.memo_misses
            ));
        }
        if self.stats.widened > 0 || self.stats.projected_slots > 0 {
            out.push_str(&format!(
                "  interval domain: {} widenings, {} projected slot(s), \
                 {} counterexample(s) re-concretized\n",
                self.stats.widened, self.stats.projected_slots, self.stats.reconcretized
            ));
        }
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {:<40} {}\n",
                v.property.name(),
                v.verdict.summary()
            ));
        }
        out
    }
}

/// Errors raised by the verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Process validation or evaluator construction failed.
    Signal(SignalError),
    /// A scheduled input step is not executable and `DeadlockFree` was not
    /// among the checked properties to absorb it as a violation.
    Evaluation {
        /// Instant of the failing step.
        instant: usize,
        /// Evaluator error text.
        detail: String,
    },
    /// A scheduled input space was given an empty trace.
    EmptySchedule,
    /// `verify` was called with no properties.
    NoProperties,
    /// A product system is inconsistent (no components, duplicate names,
    /// mismatched schedule horizons, or a link referencing an unknown
    /// component or signal).
    InvalidProduct(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Signal(e) => write!(f, "signal error: {e}"),
            VerifyError::Evaluation { instant, detail } => {
                write!(f, "scheduled step {instant} is not executable: {detail}")
            }
            VerifyError::EmptySchedule => write!(f, "scheduled input trace is empty"),
            VerifyError::NoProperties => write!(f, "no properties to verify"),
            VerifyError::InvalidProduct(detail) => write!(f, "invalid product system: {detail}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SignalError> for VerifyError {
    fn from(e: SignalError) -> Self {
        VerifyError::Signal(e)
    }
}

/// An explicit-state model checker for one flat SIGNAL process.
///
/// ```
/// use polyverify::{InputSpace, Property, Verifier, VerifyOptions};
/// use signal_moc::builder::ProcessBuilder;
/// use signal_moc::expr::Expr;
/// use signal_moc::value::ValueType;
///
/// let mut b = ProcessBuilder::new("watch");
/// b.input("Deadline", ValueType::Boolean);
/// b.input("Resume", ValueType::Boolean);
/// b.output("Alarm", ValueType::Boolean);
/// b.define("Alarm", Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))));
/// b.synchronize(&["Deadline", "Resume", "Alarm"]);
/// let process = b.build()?;
///
/// let verifier = Verifier::new(&process, VerifyOptions::default())?;
/// let outcome = verifier.verify(
///     &InputSpace::Free,
///     &[Property::NeverRaised("*Alarm*".into())],
/// )?;
/// // Deadline without Resume raises the alarm: the checker finds it.
/// assert!(!outcome.is_violation_free());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    evaluator: Evaluator,
    /// Clock calculus, computed on first use: only free-input enumeration
    /// reads it, so scheduled-mode verification never pays for the analysis.
    calculus: std::sync::OnceLock<ClockCalculus>,
    options: VerifyOptions,
}

impl Verifier {
    /// Prepares a verifier for a flat process.
    ///
    /// # Errors
    ///
    /// Propagates validation and evaluator-construction errors (the process
    /// must be flat — see [`signal_moc::process::ProcessModel::flatten`]).
    pub fn new(process: &Process, options: VerifyOptions) -> Result<Self, VerifyError> {
        let evaluator = Evaluator::new(process)?;
        Ok(Self {
            evaluator,
            calculus: std::sync::OnceLock::new(),
            options,
        })
    }

    /// The process under verification (owned by the template evaluator).
    pub fn process(&self) -> &Process {
        self.evaluator.process()
    }

    /// The clock calculus of the process, computed on first use.
    fn calculus(&self) -> Result<&ClockCalculus, VerifyError> {
        if self.calculus.get().is_none() {
            let calculus = ClockCalculus::analyze(self.process())?;
            // A concurrent set by another thread stores an identical value.
            let _ = self.calculus.set(calculus);
        }
        Ok(self.calculus.get().expect("calculus just initialised"))
    }

    /// The active options.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Enumerates the candidate input valuations for one instant in free
    /// mode, pruned by the clock calculus: synchronisation classes are
    /// all-or-nothing, mutually exclusive classes are never co-present, and a
    /// sub-clock is never present without its super-clock. Returns the
    /// candidates and whether the enumeration was truncated by
    /// [`VerifyOptions::max_branching`].
    ///
    /// # Errors
    ///
    /// Propagates clock-calculus errors (e.g. duplicate total definitions).
    pub fn free_candidates(&self) -> Result<(Vec<TraceStep>, bool), VerifyError> {
        let calculus = self.calculus()?;
        let inputs: Vec<(&str, ValueType)> = self
            .process()
            .inputs()
            .map(|d| (d.name.as_str(), d.ty))
            .collect();
        // Group the inputs by synchronisation class.
        let mut groups: BTreeMap<usize, Vec<(&str, ValueType)>> = BTreeMap::new();
        for (name, ty) in inputs {
            let class = calculus.class_of(name).map(|c| c.id).unwrap_or(usize::MAX);
            groups.entry(class).or_default().push((name, ty));
        }
        let group_list: Vec<(usize, Vec<(&str, ValueType)>)> = groups.into_iter().collect();
        // The silent valuation is always a candidate: autonomous behaviour
        // (e.g. `Alarm := true`, or outputs excluded with an input clock)
        // can be observable on instants where every input is absent, so
        // skipping it would prove such violations "safe" vacuously.
        let mut candidates = vec![TraceStep::new()];
        let mut truncated = false;
        if group_list.is_empty() {
            return Ok((candidates, false));
        }
        // More than 16 independent input clocks cannot be enumerated anyway
        // (2^16 presence combinations beats any realistic branching cap):
        // enumerate the first 16 classes and flag the truncation.
        let g = group_list.len().min(16);
        if group_list.len() > g {
            truncated = true;
        }
        'masks: for mask in 1u32..(1u32 << g) {
            let present: Vec<usize> = (0..g).filter(|i| mask & (1 << i) != 0).collect();
            // Exclusion pruning: two mutually exclusive classes never fire
            // together.
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    let (ca, cb) = (group_list[a].0, group_list[b].0);
                    let key = if ca < cb { (ca, cb) } else { (cb, ca) };
                    if calculus.exclusions().contains(&key) {
                        continue 'masks;
                    }
                }
            }
            // Hierarchy pruning: a present sub-clock requires its
            // super-clock input class to be present as well.
            for &a in &present {
                for (b, (class_b, _)) in group_list.iter().enumerate() {
                    if a != b
                        && !present.contains(&b)
                        && group_list[a].0 != *class_b
                        && calculus.is_subclock(group_list[a].0, *class_b)
                    {
                        continue 'masks;
                    }
                }
            }
            // Cartesian product of the value domains of the present inputs.
            let slots: Vec<(&str, Vec<Value>)> = present
                .iter()
                .flat_map(|&gi| group_list[gi].1.iter())
                .map(|&(name, ty)| (name, self.domain_of(ty)))
                .collect();
            let mut indices = vec![0usize; slots.len()];
            loop {
                if candidates.len() >= self.options.max_branching {
                    truncated = true;
                    break 'masks;
                }
                let mut step = TraceStep::new();
                for (slot, &i) in slots.iter().zip(&indices) {
                    step.set(slot.0, slot.1[i].clone());
                }
                candidates.push(step);
                // Odometer increment.
                let mut carry = true;
                for (pos, idx) in indices.iter_mut().enumerate().rev() {
                    if !carry {
                        break;
                    }
                    *idx += 1;
                    if *idx < slots[pos].1.len() {
                        carry = false;
                    } else {
                        *idx = 0;
                    }
                }
                if carry {
                    break;
                }
            }
        }
        Ok((candidates, truncated))
    }

    fn domain_of(&self, ty: ValueType) -> Vec<Value> {
        match ty {
            ValueType::Event => vec![Value::Event],
            ValueType::Boolean => vec![Value::Bool(false), Value::Bool(true)],
            ValueType::Integer => self
                .options
                .int_domain
                .iter()
                .map(|&i| Value::Int(i))
                .collect(),
            ValueType::Real => self
                .options
                .real_domain
                .iter()
                .map(|&r| Value::Real(r))
                .collect(),
            ValueType::Text => vec![Value::Text(String::new())],
        }
    }

    /// Explores the state space of the process over `space` and checks every
    /// property of `properties`, returning one verdict per property.
    ///
    /// The exploration is a depth-stratified parallel breadth-first search
    /// over the shared exploration core (`crate::engine`): states are
    /// interned to dense ids with incremental key hashing, and each level is
    /// distributed over [`VerifyOptions::workers`] threads by the configured
    /// [`FrontierMode`]. Counterexamples are always of minimal depth, and
    /// verdicts, counterexample traces and state counts are bit-identical
    /// under any worker count and frontier mode (equal-depth discovery races
    /// are resolved by a canonical edge ordering, and each level's
    /// violations are tie-broken the same way).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NoProperties`] for an empty property list,
    /// [`VerifyError::EmptySchedule`] for an empty scheduled trace, and
    /// [`VerifyError::Evaluation`] when a scheduled step is not executable
    /// while `DeadlockFree` is not among the checked properties.
    pub fn verify(
        &self,
        space: &InputSpace,
        properties: &[Property],
    ) -> Result<VerificationOutcome, VerifyError> {
        if properties.is_empty() {
            return Err(VerifyError::NoProperties);
        }
        if self.options.domain == Domain::Interval {
            let abstraction = SlotAbstraction::analyze(
                self.process(),
                properties,
                "",
                &[],
                self.options.project_counters,
                self.options.widen_threshold,
                self.evaluator.memory_len(),
            );
            if !abstraction.is_identity() {
                let outcome = self.verify_explicit(space, properties, Some(&abstraction))?;
                return self.reconcile(space, properties, outcome, &abstraction);
            }
        }
        self.verify_explicit(space, properties, None)
    }

    /// The strengthen-only gate of the interval domain: every abstract
    /// counterexample is re-concretized (its inputs are exact — abstraction
    /// only touches memory slots) and replayed in the explicit simulator.
    /// If all replays reproduce, the abstract outcome stands (annotated
    /// with the gate's counters); any spurious or erroring replay abandons
    /// the abstraction and re-runs today's fully concrete exploration, so
    /// no verdict can get worse than the explicit engine's.
    fn reconcile(
        &self,
        space: &InputSpace,
        properties: &[Property],
        mut outcome: VerificationOutcome,
        abstraction: &SlotAbstraction,
    ) -> Result<VerificationOutcome, VerifyError> {
        let mut reconcretized = 0usize;
        let mut confirmed = true;
        for (_, cex) in outcome.violations() {
            reconcretized += 1;
            match cex.replay(self.process()) {
                Ok(report) if report.reproduced => {}
                _ => {
                    confirmed = false;
                    break;
                }
            }
        }
        if !confirmed {
            return self.verify_explicit(space, properties, None);
        }
        outcome.stats.projected_slots = abstraction.projected_slots();
        outcome.stats.reconcretized = reconcretized;
        let obs = &self.options.collector;
        if obs.is_enabled() {
            obs.counter("engine.projected_slots")
                .add(abstraction.projected_slots() as u64);
            obs.counter("engine.reconcretized")
                .add(reconcretized as u64);
        }
        Ok(outcome)
    }

    /// One exploration pass: concrete when `abstraction` is `None`,
    /// abstract (normalising every state to its representative) otherwise.
    fn verify_explicit(
        &self,
        space: &InputSpace,
        properties: &[Property],
        abstraction: Option<&SlotAbstraction>,
    ) -> Result<VerificationOutcome, VerifyError> {
        let scheduled = match space {
            InputSpace::Scheduled(trace) if trace.is_empty() => {
                return Err(VerifyError::EmptySchedule)
            }
            InputSpace::Scheduled(trace) => Some(trace),
            InputSpace::Free => None,
        };
        let (candidates, candidates_truncated) = match scheduled {
            Some(_) => (Vec::new(), false),
            None => self.free_candidates()?,
        };

        // Every trace property — built-in shape or user LTL — compiles to
        // one monitor automaton; their registers are concatenated into the
        // `monitors` component of the explored state (a stateless formula
        // such as `never raised(...)` contributes zero registers). An
        // end-to-end property over joint product signals simply never
        // triggers in a single-thread namespace.
        let (compiled, initial_monitors) = compile_properties(properties);
        let deadlock_idx = properties
            .iter()
            .position(|p| matches!(p, Property::DeadlockFree));

        let monitor_count = initial_monitors.len();
        let mut initial_memory = self.evaluator.memory();
        if let Some(abstraction) = abstraction {
            abstraction.normalize(&mut initial_memory);
        }
        let initial = State {
            memory: initial_memory,
            phase: 0,
            monitors: initial_monitors,
        };
        let expander = ThreadExpander {
            verifier: self,
            scheduled,
            candidates: &candidates,
            compiled: &compiled,
            properties,
            deadlock_idx,
            monitor_count,
            oracle: if self.options.pruning {
                self.options.oracle.as_ref()
            } else {
                None
            },
            abstraction,
        };
        engine::explore(
            &expander,
            &initial,
            &self.options,
            properties,
            candidates_truncated,
        )
    }
}

/// The [`Expander`] of one flat process: scheduled steps follow the timing
/// trace (the phase wraps around), free steps enumerate the clock-calculus
/// candidates, optionally filtered by the dispatch-feasibility oracle.
struct ThreadExpander<'a> {
    verifier: &'a Verifier,
    scheduled: Option<&'a Trace>,
    candidates: &'a [TraceStep],
    compiled: &'a [CompiledProperty],
    properties: &'a [Property],
    deadlock_idx: Option<usize>,
    monitor_count: usize,
    oracle: Option<&'a DispatchFeasibility>,
    /// Interval-domain slot plans; `None` explores the concrete domain.
    abstraction: Option<&'a SlotAbstraction>,
}

/// Per-worker scratch: the evaluator clone (a deep copy of the flattened
/// process — created once per worker, never per level), the incremental key
/// codec, and reusable buffers so the per-successor path allocates nothing.
struct ThreadCtx {
    evaluator: Evaluator,
    codec: KeyCodec,
    monitors: Vec<u32>,
    succ_monitors: Vec<u32>,
    memory: Vec<Value>,
    considered: Vec<u32>,
}

impl ThreadExpander<'_> {
    /// Executes one candidate edge out of the seeded parent: restore the
    /// parent memory, run the evaluator, step the monitors over the
    /// borrowed resolved view, and intern the successor through the
    /// incremental codec.
    #[allow(clippy::too_many_arguments)]
    fn try_edge(
        &self,
        ctx: &mut ThreadCtx,
        depth: usize,
        edge: u32,
        input: &TraceStep,
        next_phase: u32,
        has_nonsilent: bool,
        progress: &mut usize,
        sink: &mut Sink<'_>,
    ) -> Result<(), VerifyError> {
        if ctx
            .evaluator
            .restore_memory(ctx.codec.parent_memory())
            .is_err()
        {
            // Cannot happen: snapshots always come from this process.
            return Ok(());
        }
        match ctx.evaluator.step_resolved(depth, input) {
            Ok(resolved) => {
                if !input.is_silent() || !has_nonsilent {
                    *progress += 1;
                }
                sink.transition();
                // Monitor steps on the resolved instant (the updated
                // registers are part of the successor state). A violating
                // monitor reports and keeps running — an expired deadline
                // register returns to idle — so the other properties keep
                // being explored, and several violations can land on the
                // same transition.
                ctx.succ_monitors.clear();
                ctx.succ_monitors.extend_from_slice(&ctx.monitors);
                for property in self.compiled {
                    sink.monitor_step();
                    let observed = property.step(&mut ctx.succ_monitors, &resolved);
                    if !observed.holds {
                        sink.violation(
                            property.index,
                            Some(edge),
                            self.properties[property.index].violation_witness(&observed),
                        );
                    }
                }
                // The max_states cap is deliberately NOT checked here:
                // enforcing it mid-level would make the kept frontier depend
                // on thread interleaving. The level loop checks it between
                // levels instead.
                ctx.evaluator.memory_into(&mut ctx.memory);
                if let Some(abstraction) = self.abstraction {
                    // Canonicalise to the abstract representative before
                    // interning: saturated counters collapse into one state
                    // and the fixpoint can close.
                    let widened = abstraction.normalize(&mut ctx.memory);
                    if widened > 0 {
                        sink.widened(widened);
                    }
                }
                let (hash, bytes) =
                    ctx.codec
                        .successor(&ctx.memory, next_phase, &ctx.succ_monitors);
                sink.successor(hash, bytes, edge);
            }
            Err(e) => {
                sink.infeasible();
                if self.scheduled.is_some() {
                    match self.deadlock_idx {
                        Some(idx) => sink.violation(
                            idx,
                            Some(edge),
                            format!("scheduled step not executable: {e}"),
                        ),
                        None => {
                            return Err(VerifyError::Evaluation {
                                instant: depth,
                                detail: e.to_string(),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Expander for ThreadExpander<'_> {
    type Ctx = ThreadCtx;

    fn new_ctx(&self) -> ThreadCtx {
        ThreadCtx {
            evaluator: self.verifier.evaluator.clone(),
            codec: KeyCodec::new(),
            monitors: Vec::new(),
            succ_monitors: Vec::new(),
            memory: Vec::new(),
            considered: Vec::new(),
        }
    }

    fn expand(
        &self,
        ctx: &mut ThreadCtx,
        key: &[u8],
        depth: usize,
        sink: &mut Sink<'_>,
    ) -> Result<(), VerifyError> {
        let phase = ctx
            .codec
            .seed_key(key, self.monitor_count, &mut ctx.monitors);
        match self.scheduled {
            Some(trace) => {
                let empty = TraceStep::new();
                let input = trace.step(phase as usize).unwrap_or(&empty);
                let next_phase = ((phase as usize + 1) % trace.len()) as u32;
                let mut progress = 0usize;
                self.try_edge(ctx, depth, 0, input, next_phase, true, &mut progress, sink)
            }
            None => {
                // Oracle pruning: skip candidates that make a signal present
                // at an instant its affine dispatch clock provably excludes.
                // The silent candidate has no present signals and is never
                // pruned, so the considered set is never empty.
                ctx.considered.clear();
                for (edge, candidate) in self.candidates.iter().enumerate() {
                    if let Some(oracle) = self.oracle {
                        let excluded = candidate
                            .iter()
                            .any(|(name, _)| !oracle.may_fire(name, depth as u64));
                        if excluded {
                            sink.pruned();
                            continue;
                        }
                    }
                    ctx.considered.push(edge as u32);
                }
                // Progress for the deadlock check: a feasible non-silent
                // step — or, for a closed process (whose only considered
                // valuation is the silent one), the silent step itself,
                // since autonomous systems advance on their own clock.
                let has_nonsilent = ctx
                    .considered
                    .iter()
                    .any(|&e| !self.candidates[e as usize].is_silent());
                let mut progress = 0usize;
                for i in 0..ctx.considered.len() {
                    let edge = ctx.considered[i];
                    self.try_edge(
                        ctx,
                        depth,
                        edge,
                        &self.candidates[edge as usize],
                        0,
                        has_nonsilent,
                        &mut progress,
                        sink,
                    )?;
                }
                if progress == 0 {
                    if let Some(idx) = self.deadlock_idx {
                        sink.violation(
                            idx,
                            None,
                            format!(
                                "no feasible progress valuation among {} candidates",
                                ctx.considered.len()
                            ),
                        );
                    }
                }
                Ok(())
            }
        }
    }

    fn edge_step(&self, prev_key: &[u8], edge: u32) -> TraceStep {
        match self.scheduled {
            Some(trace) => {
                let phase =
                    u32::from_le_bytes(prev_key[0..4].try_into().expect("phase bytes")) as usize;
                trace.step(phase % trace.len()).cloned().unwrap_or_default()
            }
            None => self.candidates[edge as usize].clone(),
        }
    }

    fn monitored_properties(&self) -> Vec<String> {
        self.compiled
            .iter()
            .map(|p| self.properties[p.index].name())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::expr::Expr;

    /// Deadline/Resume alarm watcher with a saturating miss counter: finite
    /// state, so free exploration closes.
    fn watcher() -> Process {
        let mut b = ProcessBuilder::new("watcher");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.define(
            "Alarm",
            Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))),
        );
        b.synchronize(&["Deadline", "Resume", "Alarm"]);
        b.build().unwrap()
    }

    /// A safe variant: the alarm can never fire.
    fn safe_watcher() -> Process {
        let mut b = ProcessBuilder::new("safe");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::and(Expr::var("Deadline"), Expr::bool(false)));
        b.synchronize(&["Deadline", "Resume", "Alarm"]);
        b.build().unwrap()
    }

    #[test]
    fn free_candidates_respect_synchronisation() {
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let (candidates, truncated) = verifier.free_candidates().unwrap();
        assert!(!truncated);
        // The silent valuation, plus: Deadline and Resume share one class,
        // so both present with 2×2 boolean values.
        assert_eq!(candidates.len(), 5);
        assert!(candidates[0].is_silent());
        for step in &candidates[1..] {
            assert!(step.is_present("Deadline"));
            assert!(step.is_present("Resume"));
        }
    }

    #[test]
    fn exclusion_gated_autonomous_alarm_is_found_on_a_silent_instant() {
        // `Alarm := true` can only be present when input `a` is absent (they
        // are mutually exclusive): the violation lives on the silent instant
        // and must still be found (regression: silent steps used to be
        // skipped for processes with inputs).
        let mut b = ProcessBuilder::new("gated");
        b.input("a", ValueType::Event);
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::bool(true));
        b.exclude(&["Alarm", "a"]);
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("alarm must be found");
        assert_eq!(cex.violation_instant, 0);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn violation_found_with_minimal_depth_and_replays() {
        let process = watcher();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("violation expected");
        assert_eq!(cex.inputs.len(), 1, "alarm is reachable in one instant");
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn safe_process_is_proved_exhaustively() {
        let verifier = Verifier::new(&safe_watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
        // Stateless process: a single state, closed immediately after one level.
        assert_eq!(outcome.stats.states, 1);
        assert!(!outcome.stats.truncated);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for process in [watcher(), safe_watcher()] {
            let sequential = Verifier::new(&process, VerifyOptions::default().with_workers(1))
                .unwrap()
                .verify(
                    &InputSpace::Free,
                    &[Property::NeverRaised("*Alarm*".into())],
                )
                .unwrap();
            let parallel = Verifier::new(&process, VerifyOptions::default().with_workers(4))
                .unwrap()
                .verify(
                    &InputSpace::Free,
                    &[Property::NeverRaised("*Alarm*".into())],
                )
                .unwrap();
            assert_eq!(
                sequential.verdicts, parallel.verdicts,
                "worker count must not change the verdicts"
            );
        }
    }

    #[test]
    fn diamond_discovery_races_yield_deterministic_counterexamples() {
        // `latch` becomes true via (Deadline,!Resume) *or* (!Deadline,Resume):
        // the latched state is discovered twice at the same level through
        // different inputs, and the alarm fires one instant later. The
        // counterexample must be byte-identical for every worker count (the
        // canonical-edge tie-break, not thread interleaving, picks the
        // parent).
        let mut b = ProcessBuilder::new("diamond");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("latch", ValueType::Boolean);
        b.define(
            "latch",
            Expr::or(
                Expr::delay(Expr::var("latch"), Value::Bool(false)),
                Expr::ne(Expr::var("Deadline"), Expr::var("Resume")),
            ),
        );
        b.define("Alarm", Expr::delay(Expr::var("latch"), Value::Bool(false)));
        b.synchronize(&["Deadline", "Resume", "latch", "Alarm"]);
        let process = b.build().unwrap();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let reference = Verifier::new(&process, VerifyOptions::default().with_workers(1))
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
        assert!(!reference.is_violation_free());
        for workers in [2usize, 4, 8] {
            for _ in 0..4 {
                let outcome =
                    Verifier::new(&process, VerifyOptions::default().with_workers(workers))
                        .unwrap()
                        .verify(&InputSpace::Free, &property)
                        .unwrap();
                assert_eq!(reference.verdicts, outcome.verdicts, "workers={workers}");
            }
        }
    }

    #[test]
    fn depth_bound_yields_bounded_verdict() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let verifier =
            Verifier::new(&process, VerifyOptions::default().with_depth_bound(5)).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        assert_eq!(outcome.stats.depth, 5);
        assert!(matches!(
            outcome.verdicts[0].verdict,
            Verdict::PassedBounded { depth: 5 }
        ));
        assert!(outcome.is_violation_free());
        assert!(!outcome.all_proved());
    }

    #[test]
    fn truncated_exploration_never_reports_proved() {
        // Regression: a depth-bound fallback (scheduled exploration of an
        // unbounded counter, cut at one hyper-period) must report
        // PassedBounded — and render as "passed-bounded", never "proved" —
        // for every checked property.
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        for t in 0..3usize {
            trace.set(t, "tick", Value::Event);
        }
        let verifier =
            Verifier::new(&process, VerifyOptions::default().with_depth_bound(6)).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.stats.truncated);
        assert!(!outcome.all_proved());
        for verdict in &outcome.verdicts {
            assert_eq!(verdict.verdict, Verdict::PassedBounded { depth: 6 });
            let summary = verdict.verdict.summary();
            assert!(
                summary.contains("passed-bounded") && !summary.contains("proved"),
                "{summary}"
            );
        }
        assert!(outcome.summary().contains("truncated"));
    }

    /// `count := count$1 init 0 + 1` — the unbounded monotone counter that
    /// can never close in the concrete domain.
    fn unbounded_counter() -> Process {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        b.build().unwrap()
    }

    #[test]
    fn interval_domain_closes_the_unbounded_counter_with_a_proof() {
        let process = unbounded_counter();
        let property = [Property::NeverRaised("*Alarm*".into())];
        // Concrete domain: the space never closes; a bounded run passes.
        let concrete = Verifier::new(&process, VerifyOptions::default().with_depth_bound(24))
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
        assert!(matches!(
            concrete.verdicts[0].verdict,
            Verdict::PassedBounded { .. }
        ));
        // Interval domain: the counter widens at the threshold, the
        // fixpoint closes, and the verdict is a genuine proof.
        let interval = Verifier::new(
            &process,
            VerifyOptions::default().with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        assert!(interval.all_proved(), "{}", interval.summary());
        assert!(!interval.stats.truncated);
        assert!(interval.stats.widened > 0, "{:?}", interval.stats);
        assert_eq!(interval.stats.reconcretized, 0);
        // Bit-identical across worker counts and frontier modes.
        for workers in [1usize, 2, 8] {
            for frontier in [FrontierMode::Barrier, FrontierMode::WorkStealing] {
                let again = Verifier::new(
                    &process,
                    VerifyOptions::default()
                        .with_domain(Domain::Interval)
                        .with_workers(workers)
                        .with_frontier(frontier),
                )
                .unwrap()
                .verify(&InputSpace::Free, &property)
                .unwrap();
                assert_eq!(interval.verdicts, again.verdicts);
                assert_eq!(interval.stats, again.stats, "workers={workers}");
            }
        }
    }

    #[test]
    fn projection_drops_the_counter_entirely() {
        let process = unbounded_counter();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let widened = Verifier::new(
            &process,
            VerifyOptions::default().with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        let projected = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_domain(Domain::Interval)
                .with_project_counters(true),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        assert!(projected.all_proved(), "{}", projected.summary());
        assert_eq!(projected.stats.projected_slots, 1);
        assert!(
            projected.stats.states < widened.stats.states,
            "projection ({}) must merge harder than widening ({})",
            projected.stats.states,
            widened.stats.states
        );
    }

    #[test]
    fn interval_domain_closes_scheduled_unbounded_counters() {
        let process = unbounded_counter();
        let mut trace = Trace::new();
        for t in 0..3usize {
            trace.set(t, "tick", Value::Event);
        }
        let outcome = Verifier::new(
            &process,
            VerifyOptions::default().with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(
            &InputSpace::Scheduled(trace),
            &[Property::NeverRaised("*Alarm*".into())],
        )
        .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
        assert!(!outcome.stats.truncated);
    }

    #[test]
    fn interval_domain_still_finds_and_replays_real_violations() {
        // The watcher's alarm is reachable; the interval domain must report
        // it with the same minimal counterexample after the replay gate.
        let process = watcher();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let concrete = Verifier::new(&process, VerifyOptions::default())
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
        let interval = Verifier::new(
            &process,
            VerifyOptions::default().with_domain(Domain::Interval),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        assert_eq!(concrete.verdicts, interval.verdicts);
        let (_, cex) = interval.violations().next().expect("alarm reachable");
        assert!(cex.replay(&process).unwrap().reproduced);
    }

    #[test]
    fn deadlock_free_requests_run_concrete_under_interval() {
        // DeadlockFree disables the abstraction: the interval run of the
        // unbounded counter behaves exactly like the concrete engine (here:
        // truncated by the depth bound, never widened).
        let process = unbounded_counter();
        let outcome = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_domain(Domain::Interval)
                .with_depth_bound(4),
        )
        .unwrap()
        .verify(
            &InputSpace::Free,
            &[
                Property::NeverRaised("*Alarm*".into()),
                Property::DeadlockFree,
            ],
        )
        .unwrap();
        assert_eq!(outcome.stats.widened, 0);
        assert!(outcome.stats.truncated);
    }

    #[test]
    fn bounded_response_violation_found() {
        // Resume never answers Deadline within 1 instant if the environment
        // never raises Resume.
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::BoundedResponse {
                    trigger: "Deadline".into(),
                    response: "Resume".into(),
                    bound: 1,
                }],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("violation expected");
        let replay = cex.replay(&watcher()).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn end_to_end_response_is_vacuous_in_a_single_thread_namespace() {
        // An EndToEndResponse over joint product signals never triggers in
        // per-thread scope (the signals do not exist here): the property is
        // vacuously satisfied, which is exactly the blind spot product
        // verification closes.
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::EndToEndResponse {
                    from: "cLink_sent".into(),
                    to: "cLink_consumed".into(),
                    bound: 2,
                }],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
    }

    #[test]
    fn closed_process_silent_step_is_explored() {
        // A process with no inputs still runs autonomously: its single
        // valuation per instant is the silent one, and `Alarm := true` must
        // be found immediately (regression: it used to be vacuously proved).
        let mut b = ProcessBuilder::new("closed");
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::bool(true));
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("alarm must be found");
        assert_eq!(cex.violation_instant, 0);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn state_cap_yields_identical_bounded_verdicts_for_any_worker_count() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let reference = Verifier::new(
            &process,
            VerifyOptions::default().with_workers(1).with_max_states(3),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        assert!(reference.stats.truncated);
        assert!(matches!(
            reference.verdicts[0].verdict,
            Verdict::PassedBounded { .. }
        ));
        for workers in [2usize, 4] {
            let outcome = Verifier::new(
                &process,
                VerifyOptions::default()
                    .with_workers(workers)
                    .with_max_states(3),
            )
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
            assert_eq!(reference.verdicts, outcome.verdicts);
            assert_eq!(reference.stats.states, outcome.stats.states);
        }
    }

    #[test]
    fn two_monitors_expiring_on_the_same_transition_are_both_reported() {
        // Neither NoResponseA nor NoResponseB ever fires: both bounded
        // responses to Deadline expire on the same step and both must be
        // reported as violated (regression: the second used to shadow the
        // first).
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[
                    Property::BoundedResponse {
                        trigger: "Deadline".into(),
                        response: "NoResponseA".into(),
                        bound: 1,
                    },
                    Property::BoundedResponse {
                        trigger: "Deadline".into(),
                        response: "NoResponseB".into(),
                        bound: 1,
                    },
                ],
            )
            .unwrap();
        assert_eq!(outcome.violations().count(), 2, "{}", outcome.summary());
    }

    #[test]
    fn free_mode_dead_end_detected_and_probed_by_replay() {
        // `y := a when false` makes y permanently absent, while `a ^= y`
        // forces a to be absent too: the only candidate valuation (a
        // present) is infeasible, so the initial state is a dead end.
        let mut b = ProcessBuilder::new("stuck");
        b.input("a", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::when(Expr::var("a"), Expr::bool(false)));
        b.synchronize(&["a", "y"]);
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&InputSpace::Free, &[Property::DeadlockFree])
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("dead end expected");
        assert_eq!(cex.violation_instant, 0);
        assert!(cex.inputs.is_empty());
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
        assert!(replay.detail.contains("candidate valuations rejected"));
    }

    #[test]
    fn scheduled_exploration_closes_on_periodic_systems() {
        // Drive the watcher with a 3-tick schedule where Resume always
        // accompanies Deadline: alarm-free, and the state space closes
        // (stateless memory × 3 phases).
        let mut trace = Trace::new();
        for t in 0..3usize {
            trace.set(t, "Deadline", Value::Bool(t == 2));
            trace.set(t, "Resume", Value::Bool(t == 2));
        }
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
        assert_eq!(outcome.stats.states, 3, "one state per phase");
    }

    #[test]
    fn scheduled_deadlock_detected_and_replayable() {
        // An exclusion constraint makes the scheduled step infeasible.
        let mut b = ProcessBuilder::new("excl");
        b.input("r", ValueType::Event);
        b.input("w", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::default(Expr::var("r"), Expr::var("w")));
        b.exclude(&["r", "w"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        trace.set(0, "r", Value::Event);
        trace.set(1, "r", Value::Event);
        trace.set(1, "w", Value::Event);
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&InputSpace::Scheduled(trace), &[Property::DeadlockFree])
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("deadlock expected");
        assert_eq!(cex.violation_instant, 1);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn scheduled_error_without_deadlock_property_is_fatal() {
        let mut b = ProcessBuilder::new("sync");
        b.input("a", ValueType::Event);
        b.input("b", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::var("a"));
        b.synchronize(&["a", "b"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        trace.set(0, "a", Value::Event);
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let err = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap_err();
        assert!(matches!(err, VerifyError::Evaluation { instant: 0, .. }));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        assert_eq!(
            verifier.verify(&InputSpace::Free, &[]),
            Err(VerifyError::NoProperties)
        );
        assert_eq!(
            verifier.verify(
                &InputSpace::Scheduled(Trace::new()),
                &[Property::DeadlockFree]
            ),
            Err(VerifyError::EmptySchedule)
        );
    }
}
