//! The explicit-state reachability engine: feasible-successor enumeration
//! (reusing the clock calculus), a parallel breadth-first exploration with a
//! sharded seen-set, and a depth-bounded fallback for large products.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use signal_moc::clockcalc::ClockCalculus;
use signal_moc::error::SignalError;
use signal_moc::eval::Evaluator;
use signal_moc::process::Process;
use signal_moc::trace::{Trace, TraceStep};
use signal_moc::value::{Value, ValueType};

use crate::counterexample::Counterexample;
use crate::monitor::{compile_properties, CompiledProperty};
use crate::property::Property;
use crate::state::{State, StateKey};

/// Tuning knobs of the exploration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOptions {
    /// Number of worker threads expanding each breadth-first level (the
    /// scale knob of the parallel engine). Clamped to at least 1.
    pub workers: usize,
    /// Maximum exploration depth (number of instants); `None` explores until
    /// the state space closes.
    pub depth_bound: Option<usize>,
    /// Cap on the number of distinct states kept in the seen-set; once
    /// reached the engine stops expanding and reports a bounded verdict.
    /// The cap is checked between breadth-first levels (never mid-level, so
    /// results stay deterministic under any worker count); the final level
    /// may therefore overshoot it by one level's worth of successors.
    pub max_states: usize,
    /// Values enumerated for free integer inputs.
    pub int_domain: Vec<i64>,
    /// Values enumerated for free real inputs.
    pub real_domain: Vec<f64>,
    /// Cap on the number of distinct input valuations enumerated per instant
    /// in free mode; exceeding it truncates the enumeration (and downgrades
    /// `Proved` to a bounded verdict).
    pub max_branching: usize,
    /// Number of shards of the concurrent seen-set.
    pub shards: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            depth_bound: None,
            max_states: 1 << 20,
            int_domain: vec![0, 1],
            real_domain: vec![0.0, 1.0],
            max_branching: 256,
            shards: 16,
        }
    }
}

impl VerifyOptions {
    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the depth bound.
    pub fn with_depth_bound(mut self, bound: usize) -> Self {
        self.depth_bound = Some(bound);
        self
    }

    /// Removes the depth bound (explore until closure).
    pub fn unbounded(mut self) -> Self {
        self.depth_bound = None;
        self
    }

    /// Sets the seen-set state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states.max(1);
        self
    }
}

/// The input space explored for a process.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpace {
    /// All feasible input valuations are enumerated at every instant —
    /// including the silent (all-absent) one, since autonomous behaviour
    /// (free-clocked constants, exclusion-gated outputs) can be observable
    /// even when every input is absent. Presence combinations are pruned by
    /// the clock calculus: synchronisation classes are all-or-nothing,
    /// mutually exclusive classes never co-fire, and a sub-clock is never
    /// present without its super-clock. Deadlock freedom asks for a feasible
    /// *non-silent* valuation (silent stuttering is not progress).
    Free,
    /// Inputs are driven by a scheduler-generated timing trace; the phase
    /// wraps around, so exploring until closure verifies the periodic system
    /// for unbounded time whenever the memory is finite.
    Scheduled(Trace),
}

/// The verdict of one property after exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The whole reachable state space was explored without a violation: the
    /// property holds for every execution of the input space.
    Proved,
    /// No violation was found up to the explored depth, but the exploration
    /// was bounded (depth bound, state cap or branching truncation): the
    /// property *passed* the bounded search, it was not proved. Every
    /// truncated exploration reports this variant — never [`Verdict::Proved`]
    /// — so a depth-bound fallback can never masquerade as a proof.
    PassedBounded {
        /// Number of instants fully explored.
        depth: usize,
    },
    /// The property is violated; the counterexample replays in the
    /// simulator.
    Violated(Counterexample),
}

impl Verdict {
    /// Returns `true` when the verdict is a violation.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// Returns `true` when no violation was found (proved or bounded).
    pub fn passed(&self) -> bool {
        !self.is_violated()
    }

    /// A one-line rendering for reports. A bounded pass is always rendered
    /// as `passed-bounded`, never as a proof (regression: truncated
    /// explorations must not read as "proved" in reports).
    pub fn summary(&self) -> String {
        match self {
            Verdict::Proved => "proved (state space exhausted)".to_string(),
            Verdict::PassedBounded { depth } => {
                format!("passed-bounded (no violation within {depth} instants; not a proof)")
            }
            Verdict::Violated(cex) => format!(
                "VIOLATED at instant {} ({})",
                cex.violation_instant, cex.witness
            ),
        }
    }
}

/// The verdict of one checked property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyVerdict {
    /// The property that was checked.
    pub property: Property,
    /// Its verdict.
    pub verdict: Verdict,
}

/// Counters describing one exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplorationStats {
    /// Number of distinct states inserted in the seen-set.
    pub states: usize,
    /// Number of executed transitions (feasible successor steps).
    pub transitions: usize,
    /// Number of enumerated input valuations rejected by the evaluator.
    pub infeasible: usize,
    /// Number of instants fully explored (breadth-first levels expanded).
    pub depth: usize,
    /// Maximum worker threads actually exercised (bounded by the configured
    /// count and by the widest frontier — a scheduled exploration has
    /// frontier size 1 and therefore always runs sequentially).
    pub workers: usize,
    /// `true` when the exploration was cut short — by the depth bound, the
    /// state cap, a branching truncation, or an early stop once every
    /// checked property had a violation — in which case `Proved` verdicts
    /// are downgraded and the counters describe a partial search.
    pub truncated: bool,
}

/// Everything one [`Verifier::verify`] call learned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationOutcome {
    /// Per-property verdicts, in the order the properties were given.
    pub verdicts: Vec<PropertyVerdict>,
    /// Exploration counters.
    pub stats: ExplorationStats,
}

impl VerificationOutcome {
    /// Returns `true` when no checked property is violated.
    pub fn is_violation_free(&self) -> bool {
        self.verdicts.iter().all(|v| v.verdict.passed())
    }

    /// Returns `true` when every property was proved exhaustively.
    pub fn all_proved(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| matches!(v.verdict, Verdict::Proved))
    }

    /// The violated properties and their counterexamples.
    pub fn violations(&self) -> impl Iterator<Item = (&Property, &Counterexample)> {
        self.verdicts.iter().filter_map(|v| match &v.verdict {
            Verdict::Violated(cex) => Some((&v.property, cex)),
            _ => None,
        })
    }

    /// A compact multi-line rendering for reports and the CLI.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "explored {} states / {} transitions at depth {} ({} worker(s){})\n",
            self.stats.states,
            self.stats.transitions,
            self.stats.depth,
            self.stats.workers,
            if self.stats.truncated {
                ", truncated"
            } else {
                ", exhaustive"
            }
        );
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {:<40} {}\n",
                v.property.name(),
                v.verdict.summary()
            ));
        }
        out
    }
}

/// Errors raised by the verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Process validation or evaluator construction failed.
    Signal(SignalError),
    /// A scheduled input step is not executable and `DeadlockFree` was not
    /// among the checked properties to absorb it as a violation.
    Evaluation {
        /// Instant of the failing step.
        instant: usize,
        /// Evaluator error text.
        detail: String,
    },
    /// A scheduled input space was given an empty trace.
    EmptySchedule,
    /// `verify` was called with no properties.
    NoProperties,
    /// A product system is inconsistent (no components, duplicate names,
    /// mismatched schedule horizons, or a link referencing an unknown
    /// component or signal).
    InvalidProduct(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Signal(e) => write!(f, "signal error: {e}"),
            VerifyError::Evaluation { instant, detail } => {
                write!(f, "scheduled step {instant} is not executable: {detail}")
            }
            VerifyError::EmptySchedule => write!(f, "scheduled input trace is empty"),
            VerifyError::NoProperties => write!(f, "no properties to verify"),
            VerifyError::InvalidProduct(detail) => write!(f, "invalid product system: {detail}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SignalError> for VerifyError {
    fn from(e: SignalError) -> Self {
        VerifyError::Signal(e)
    }
}

/// Parent link of a seen state, used to reconstruct counterexample paths.
///
/// `depth` is the breadth-first level of the edge. When two workers discover
/// the same state at the same level through different edges, the edge with
/// the lexicographically smallest canonical encoding ([`Parent::order`])
/// wins, so parent links — and therefore counterexample traces — do not
/// depend on thread interleaving or worker count. The encoding is computed
/// only on such same-level collisions, never stored.
#[derive(Debug, Clone)]
struct Parent {
    prev: Option<StateKey>,
    input: TraceStep,
    depth: usize,
}

impl Parent {
    fn new(prev: Option<StateKey>, input: TraceStep, depth: usize) -> Self {
        Self { prev, input, depth }
    }

    /// Canonical encoding of the edge `(prev, input)` for deterministic
    /// tie-breaking.
    fn order(&self) -> Vec<u8> {
        let mut order = Vec::new();
        if let Some(prev) = &self.prev {
            order.extend_from_slice(prev.as_bytes());
        }
        order.push(0xFF);
        step_order_bytes(&self.input, &mut order);
        order
    }
}

/// Sharded concurrent seen-set: each shard guards a map from state key to
/// the parent link recorded when the state was first discovered.
struct SeenSet {
    shards: Vec<Mutex<HashMap<StateKey, Parent>>>,
}

impl SeenSet {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &StateKey) -> &Mutex<HashMap<StateKey, Parent>> {
        let idx = (key.shard_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Inserts the state if unseen; returns `true` when it was fresh. When
    /// the state was already discovered *at the same level*, the parent link
    /// with the smallest canonical edge encoding is kept, which makes the
    /// recorded exploration tree deterministic under any worker count.
    fn insert(&self, key: StateKey, parent: Parent) -> bool {
        let mut shard = self.shard_of(&key).lock().expect("seen-set shard poisoned");
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let existing = entry.get();
                if parent.depth == existing.depth && parent.order() < existing.order() {
                    entry.insert(parent);
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(parent);
                true
            }
        }
    }

    fn parent_of(&self, key: &StateKey) -> Option<Parent> {
        self.shard_of(key)
            .lock()
            .expect("seen-set shard poisoned")
            .get(key)
            .cloned()
    }

    /// Reconstructs the input trace from the initial state to `key`.
    fn path_to(&self, key: &StateKey) -> Trace {
        let mut steps = Vec::new();
        let mut cursor = Some(key.clone());
        while let Some(k) = cursor {
            match self.parent_of(&k) {
                Some(Parent {
                    prev: Some(p),
                    input,
                    ..
                }) => {
                    steps.push(input);
                    cursor = Some(p);
                }
                _ => cursor = None,
            }
        }
        steps.reverse();
        steps.into_iter().collect()
    }
}

/// A violation observed while expanding one breadth-first level.
struct LevelViolation {
    property: usize,
    parent: StateKey,
    /// The violating input step; `None` for a free-mode dead end (the state
    /// itself has no feasible successor).
    input: Option<TraceStep>,
    witness: String,
}

/// Output of one worker over its chunk of the frontier.
struct WorkerOut {
    next: Vec<State>,
    violations: Vec<LevelViolation>,
    transitions: usize,
    infeasible: usize,
    fatal: Option<VerifyError>,
}

/// An explicit-state model checker for one flat SIGNAL process.
///
/// ```
/// use polyverify::{InputSpace, Property, Verifier, VerifyOptions};
/// use signal_moc::builder::ProcessBuilder;
/// use signal_moc::expr::Expr;
/// use signal_moc::value::ValueType;
///
/// let mut b = ProcessBuilder::new("watch");
/// b.input("Deadline", ValueType::Boolean);
/// b.input("Resume", ValueType::Boolean);
/// b.output("Alarm", ValueType::Boolean);
/// b.define("Alarm", Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))));
/// b.synchronize(&["Deadline", "Resume", "Alarm"]);
/// let process = b.build()?;
///
/// let verifier = Verifier::new(&process, VerifyOptions::default())?;
/// let outcome = verifier.verify(
///     &InputSpace::Free,
///     &[Property::NeverRaised("*Alarm*".into())],
/// )?;
/// // Deadline without Resume raises the alarm: the checker finds it.
/// assert!(!outcome.is_violation_free());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    evaluator: Evaluator,
    /// Clock calculus, computed on first use: only free-input enumeration
    /// reads it, so scheduled-mode verification never pays for the analysis.
    calculus: std::sync::OnceLock<ClockCalculus>,
    options: VerifyOptions,
}

impl Verifier {
    /// Prepares a verifier for a flat process.
    ///
    /// # Errors
    ///
    /// Propagates validation and evaluator-construction errors (the process
    /// must be flat — see [`signal_moc::process::ProcessModel::flatten`]).
    pub fn new(process: &Process, options: VerifyOptions) -> Result<Self, VerifyError> {
        let evaluator = Evaluator::new(process)?;
        Ok(Self {
            evaluator,
            calculus: std::sync::OnceLock::new(),
            options,
        })
    }

    /// The process under verification (owned by the template evaluator).
    pub fn process(&self) -> &Process {
        self.evaluator.process()
    }

    /// The clock calculus of the process, computed on first use.
    fn calculus(&self) -> Result<&ClockCalculus, VerifyError> {
        if self.calculus.get().is_none() {
            let calculus = ClockCalculus::analyze(self.process())?;
            // A concurrent set by another thread stores an identical value.
            let _ = self.calculus.set(calculus);
        }
        Ok(self.calculus.get().expect("calculus just initialised"))
    }

    /// The active options.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Enumerates the candidate input valuations for one instant in free
    /// mode, pruned by the clock calculus: synchronisation classes are
    /// all-or-nothing, mutually exclusive classes are never co-present, and a
    /// sub-clock is never present without its super-clock. Returns the
    /// candidates and whether the enumeration was truncated by
    /// [`VerifyOptions::max_branching`].
    ///
    /// # Errors
    ///
    /// Propagates clock-calculus errors (e.g. duplicate total definitions).
    pub fn free_candidates(&self) -> Result<(Vec<TraceStep>, bool), VerifyError> {
        let calculus = self.calculus()?;
        let inputs: Vec<(&str, ValueType)> = self
            .process()
            .inputs()
            .map(|d| (d.name.as_str(), d.ty))
            .collect();
        // Group the inputs by synchronisation class.
        let mut groups: BTreeMap<usize, Vec<(&str, ValueType)>> = BTreeMap::new();
        for (name, ty) in inputs {
            let class = calculus.class_of(name).map(|c| c.id).unwrap_or(usize::MAX);
            groups.entry(class).or_default().push((name, ty));
        }
        let group_list: Vec<(usize, Vec<(&str, ValueType)>)> = groups.into_iter().collect();
        // The silent valuation is always a candidate: autonomous behaviour
        // (e.g. `Alarm := true`, or outputs excluded with an input clock)
        // can be observable on instants where every input is absent, so
        // skipping it would prove such violations "safe" vacuously.
        let mut candidates = vec![TraceStep::new()];
        let mut truncated = false;
        if group_list.is_empty() {
            return Ok((candidates, false));
        }
        // More than 16 independent input clocks cannot be enumerated anyway
        // (2^16 presence combinations beats any realistic branching cap):
        // enumerate the first 16 classes and flag the truncation.
        let g = group_list.len().min(16);
        if group_list.len() > g {
            truncated = true;
        }
        'masks: for mask in 1u32..(1u32 << g) {
            let present: Vec<usize> = (0..g).filter(|i| mask & (1 << i) != 0).collect();
            // Exclusion pruning: two mutually exclusive classes never fire
            // together.
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    let (ca, cb) = (group_list[a].0, group_list[b].0);
                    let key = if ca < cb { (ca, cb) } else { (cb, ca) };
                    if calculus.exclusions().contains(&key) {
                        continue 'masks;
                    }
                }
            }
            // Hierarchy pruning: a present sub-clock requires its
            // super-clock input class to be present as well.
            for &a in &present {
                for (b, (class_b, _)) in group_list.iter().enumerate() {
                    if a != b
                        && !present.contains(&b)
                        && group_list[a].0 != *class_b
                        && calculus.is_subclock(group_list[a].0, *class_b)
                    {
                        continue 'masks;
                    }
                }
            }
            // Cartesian product of the value domains of the present inputs.
            let slots: Vec<(&str, Vec<Value>)> = present
                .iter()
                .flat_map(|&gi| group_list[gi].1.iter())
                .map(|&(name, ty)| (name, self.domain_of(ty)))
                .collect();
            let mut indices = vec![0usize; slots.len()];
            loop {
                if candidates.len() >= self.options.max_branching {
                    truncated = true;
                    break 'masks;
                }
                let mut step = TraceStep::new();
                for (slot, &i) in slots.iter().zip(&indices) {
                    step.set(slot.0, slot.1[i].clone());
                }
                candidates.push(step);
                // Odometer increment.
                let mut carry = true;
                for (pos, idx) in indices.iter_mut().enumerate().rev() {
                    if !carry {
                        break;
                    }
                    *idx += 1;
                    if *idx < slots[pos].1.len() {
                        carry = false;
                    } else {
                        *idx = 0;
                    }
                }
                if carry {
                    break;
                }
            }
        }
        Ok((candidates, truncated))
    }

    fn domain_of(&self, ty: ValueType) -> Vec<Value> {
        match ty {
            ValueType::Event => vec![Value::Event],
            ValueType::Boolean => vec![Value::Bool(false), Value::Bool(true)],
            ValueType::Integer => self
                .options
                .int_domain
                .iter()
                .map(|&i| Value::Int(i))
                .collect(),
            ValueType::Real => self
                .options
                .real_domain
                .iter()
                .map(|&r| Value::Real(r))
                .collect(),
            ValueType::Text => vec![Value::Text(String::new())],
        }
    }

    /// Explores the state space of the process over `space` and checks every
    /// property of `properties`, returning one verdict per property.
    ///
    /// The exploration is a level-synchronised parallel breadth-first search:
    /// each level is split across [`VerifyOptions::workers`] threads sharing
    /// a sharded seen-set. Counterexamples are always of minimal depth, and
    /// both verdicts and counterexample traces are independent of the worker
    /// count (equal-depth discovery races are resolved by a canonical edge
    /// ordering, and each level's violations are tie-broken the same way).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NoProperties`] for an empty property list,
    /// [`VerifyError::EmptySchedule`] for an empty scheduled trace, and
    /// [`VerifyError::Evaluation`] when a scheduled step is not executable
    /// while `DeadlockFree` is not among the checked properties.
    pub fn verify(
        &self,
        space: &InputSpace,
        properties: &[Property],
    ) -> Result<VerificationOutcome, VerifyError> {
        if properties.is_empty() {
            return Err(VerifyError::NoProperties);
        }
        let scheduled = match space {
            InputSpace::Scheduled(trace) if trace.is_empty() => {
                return Err(VerifyError::EmptySchedule)
            }
            InputSpace::Scheduled(trace) => Some(trace),
            InputSpace::Free => None,
        };
        let (candidates, candidates_truncated) = match scheduled {
            Some(_) => (Vec::new(), false),
            None => self.free_candidates()?,
        };

        // Every trace property — built-in shape or user LTL — compiles to
        // one monitor automaton; their registers are concatenated into the
        // `monitors` component of the explored state (a stateless formula
        // such as `never raised(...)` contributes zero registers). An
        // end-to-end property over joint product signals simply never
        // triggers in a single-thread namespace.
        let (compiled, initial_monitors) = compile_properties(properties);
        let deadlock_checked = properties
            .iter()
            .any(|p| matches!(p, Property::DeadlockFree));

        let initial = State {
            memory: self.evaluator.memory(),
            phase: 0,
            monitors: initial_monitors,
        };
        let seen = SeenSet::new(self.options.shards);
        seen.insert(initial.key(), Parent::new(None, TraceStep::new(), 0));
        let state_count = AtomicUsize::new(1);

        // One evaluator per worker, reused across every level and grown
        // lazily to the parallelism actually exercised: cloning the
        // evaluator deep-copies the flattened process, so it must not sit in
        // the per-level (let alone per-transition) path — and scheduled-mode
        // runs (frontier size 1) should never clone more than one.
        let mut worker_evaluators: Vec<Evaluator> = Vec::new();
        let mut workers_used = 1usize;

        let mut frontier = vec![initial];
        let mut depth = 0usize;
        let mut transitions = 0usize;
        let mut infeasible = 0usize;
        let mut truncated = candidates_truncated;
        let mut found: Vec<Option<Counterexample>> = vec![None; properties.len()];

        loop {
            if frontier.is_empty() {
                break;
            }
            if found.iter().all(Option::is_some) {
                // Every property already has a (minimal-depth) violation:
                // stop early. The frontier is not empty, so the stats
                // describe a partial search, not an exhausted space.
                truncated = true;
                break;
            }
            if let Some(bound) = self.options.depth_bound {
                if depth >= bound {
                    truncated = true;
                    break;
                }
            }
            if state_count.load(Ordering::Relaxed) >= self.options.max_states {
                truncated = true;
                break;
            }

            let workers = self.options.workers.max(1).min(frontier.len());
            workers_used = workers_used.max(workers);
            while worker_evaluators.len() < workers {
                worker_evaluators.push(self.evaluator.clone());
            }
            let chunk_size = frontier.len().div_ceil(workers);
            let chunks: Vec<&[State]> = frontier.chunks(chunk_size).collect();
            let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .zip(worker_evaluators.iter_mut())
                    .map(|(chunk, evaluator)| {
                        let seen = &seen;
                        let state_count = &state_count;
                        let candidates = &candidates;
                        let compiled = &compiled;
                        scope.spawn(move || {
                            self.expand_chunk(
                                evaluator,
                                chunk,
                                depth,
                                scheduled,
                                candidates,
                                compiled,
                                properties,
                                deadlock_checked,
                                seen,
                                state_count,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("exploration worker panicked"))
                    .collect()
            });

            let mut next = Vec::new();
            let mut violations: Vec<LevelViolation> = Vec::new();
            for out in outs {
                if let Some(fatal) = out.fatal {
                    return Err(fatal);
                }
                transitions += out.transitions;
                infeasible += out.infeasible;
                next.extend(out.next);
                violations.extend(out.violations);
            }

            // Resolve this level's violations deterministically: for each
            // property take the lexicographically smallest counterexample.
            for (idx, slot) in found.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let mut best: Option<Counterexample> = None;
                for v in violations.iter().filter(|v| v.property == idx) {
                    let mut inputs = seen.path_to(&v.parent);
                    if let Some(step) = &v.input {
                        inputs.push(step.clone());
                    }
                    let violation_instant = if v.input.is_some() {
                        inputs.len().saturating_sub(1)
                    } else {
                        inputs.len()
                    };
                    let cex = Counterexample {
                        property: properties[idx].clone(),
                        inputs,
                        violation_instant,
                        witness: v.witness.clone(),
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            trace_order(&cex.inputs, &cex.witness)
                                < trace_order(&b.inputs, &b.witness)
                        }
                    };
                    if better {
                        best = Some(cex);
                    }
                }
                *slot = best;
            }

            depth += 1;
            frontier = next;
        }

        // Note: a cap-level state count is always caught by the loop-top
        // check (fresh states leave a non-empty frontier), so `truncated`
        // needs no re-derivation here.
        let stats = ExplorationStats {
            states: state_count.load(Ordering::Relaxed),
            transitions,
            infeasible,
            depth,
            workers: workers_used,
            truncated,
        };
        let verdicts = properties
            .iter()
            .zip(found)
            .map(|(property, cex)| PropertyVerdict {
                property: property.clone(),
                verdict: match cex {
                    Some(cex) => Verdict::Violated(cex),
                    None if truncated => Verdict::PassedBounded { depth },
                    None => Verdict::Proved,
                },
            })
            .collect();
        Ok(VerificationOutcome { verdicts, stats })
    }

    /// Expands one chunk of a breadth-first level, reusing the worker's
    /// evaluator (its memory is restored before every step).
    #[allow(clippy::too_many_arguments)]
    fn expand_chunk(
        &self,
        evaluator: &mut Evaluator,
        chunk: &[State],
        depth: usize,
        scheduled: Option<&Trace>,
        candidates: &[TraceStep],
        compiled: &[CompiledProperty],
        properties: &[Property],
        deadlock_checked: bool,
        seen: &SeenSet,
        state_count: &AtomicUsize,
    ) -> WorkerOut {
        let mut out = WorkerOut {
            next: Vec::new(),
            violations: Vec::new(),
            transitions: 0,
            infeasible: 0,
            fatal: None,
        };
        for state in chunk {
            let key = state.key();
            let scheduled_step;
            let (inputs_here, next_phase): (&[TraceStep], u32) = match scheduled {
                Some(trace) => {
                    scheduled_step = trace
                        .step(state.phase as usize)
                        .cloned()
                        .unwrap_or_default();
                    (
                        std::slice::from_ref(&scheduled_step),
                        ((state.phase as usize + 1) % trace.len()) as u32,
                    )
                }
                None => (candidates, 0),
            };
            // Progress for the deadlock check: a feasible non-silent step —
            // or, for a closed process (whose only valuation is the silent
            // one), the silent step itself, since autonomous systems advance
            // on their own clock.
            let has_nonsilent = inputs_here.iter().any(|c| !c.is_silent());
            let mut progress_here = 0usize;
            for input in inputs_here {
                if evaluator.restore_memory(&state.memory).is_err() {
                    // Cannot happen: snapshots always come from this process.
                    continue;
                }
                match evaluator.step(depth, input) {
                    Ok(resolved) => {
                        if !input.is_silent() || !has_nonsilent {
                            progress_here += 1;
                        }
                        out.transitions += 1;
                        // Monitor steps on the resolved instant (the updated
                        // registers are part of the successor state). A
                        // violating monitor reports and keeps running — an
                        // expired deadline register returns to idle — so the
                        // other properties keep being explored, and several
                        // violations can land on the same transition.
                        let mut monitors = state.monitors.clone();
                        for property in compiled {
                            let observed = property.step(&mut monitors, &resolved);
                            if !observed.holds {
                                out.violations.push(LevelViolation {
                                    property: property.index,
                                    parent: key.clone(),
                                    input: Some(input.clone()),
                                    witness: properties[property.index]
                                        .violation_witness(&observed),
                                });
                            }
                        }
                        // The max_states cap is deliberately NOT checked
                        // here: enforcing it mid-level would make the kept
                        // frontier depend on thread interleaving. The level
                        // loop checks it between levels instead.
                        let successor = State {
                            memory: evaluator.memory(),
                            phase: next_phase,
                            monitors,
                        };
                        if seen.insert(
                            successor.key(),
                            Parent::new(Some(key.clone()), input.clone(), depth + 1),
                        ) {
                            state_count.fetch_add(1, Ordering::Relaxed);
                            out.next.push(successor);
                        }
                    }
                    Err(e) => {
                        out.infeasible += 1;
                        if scheduled.is_some() {
                            if deadlock_checked {
                                let idx = properties
                                    .iter()
                                    .position(|p| matches!(p, Property::DeadlockFree))
                                    .expect("deadlock_checked implies the property is present");
                                out.violations.push(LevelViolation {
                                    property: idx,
                                    parent: key.clone(),
                                    input: Some(input.clone()),
                                    witness: format!("scheduled step not executable: {e}"),
                                });
                            } else {
                                out.fatal = Some(VerifyError::Evaluation {
                                    instant: depth,
                                    detail: e.to_string(),
                                });
                                return out;
                            }
                        }
                    }
                }
            }
            if scheduled.is_none() && deadlock_checked && progress_here == 0 {
                let idx = properties
                    .iter()
                    .position(|p| matches!(p, Property::DeadlockFree))
                    .expect("deadlock_checked implies the property is present");
                out.violations.push(LevelViolation {
                    property: idx,
                    parent: key.clone(),
                    input: None,
                    witness: format!(
                        "no feasible progress valuation among {} candidates",
                        candidates.len()
                    ),
                });
            }
        }
        out
    }
}

/// Canonical byte encoding of one input step, used for deterministic
/// ordering of exploration edges and counterexamples.
fn step_order_bytes(step: &TraceStep, out: &mut Vec<u8>) {
    for (name, value) in step.iter() {
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        out.extend_from_slice(value.to_string().as_bytes());
        out.push(1);
    }
    out.push(2);
}

/// A deterministic ordering key for counterexample selection within a level.
fn trace_order(inputs: &Trace, witness: &str) -> (usize, Vec<u8>, String) {
    let mut bytes = Vec::new();
    for step in inputs.iter() {
        step_order_bytes(step, &mut bytes);
    }
    (inputs.len(), bytes, witness.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::expr::Expr;

    /// Deadline/Resume alarm watcher with a saturating miss counter: finite
    /// state, so free exploration closes.
    fn watcher() -> Process {
        let mut b = ProcessBuilder::new("watcher");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.define(
            "Alarm",
            Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))),
        );
        b.synchronize(&["Deadline", "Resume", "Alarm"]);
        b.build().unwrap()
    }

    /// A safe variant: the alarm can never fire.
    fn safe_watcher() -> Process {
        let mut b = ProcessBuilder::new("safe");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::and(Expr::var("Deadline"), Expr::bool(false)));
        b.synchronize(&["Deadline", "Resume", "Alarm"]);
        b.build().unwrap()
    }

    #[test]
    fn free_candidates_respect_synchronisation() {
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let (candidates, truncated) = verifier.free_candidates().unwrap();
        assert!(!truncated);
        // The silent valuation, plus: Deadline and Resume share one class,
        // so both present with 2×2 boolean values.
        assert_eq!(candidates.len(), 5);
        assert!(candidates[0].is_silent());
        for step in &candidates[1..] {
            assert!(step.is_present("Deadline"));
            assert!(step.is_present("Resume"));
        }
    }

    #[test]
    fn exclusion_gated_autonomous_alarm_is_found_on_a_silent_instant() {
        // `Alarm := true` can only be present when input `a` is absent (they
        // are mutually exclusive): the violation lives on the silent instant
        // and must still be found (regression: silent steps used to be
        // skipped for processes with inputs).
        let mut b = ProcessBuilder::new("gated");
        b.input("a", ValueType::Event);
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::bool(true));
        b.exclude(&["Alarm", "a"]);
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("alarm must be found");
        assert_eq!(cex.violation_instant, 0);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn violation_found_with_minimal_depth_and_replays() {
        let process = watcher();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("violation expected");
        assert_eq!(cex.inputs.len(), 1, "alarm is reachable in one instant");
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn safe_process_is_proved_exhaustively() {
        let verifier = Verifier::new(&safe_watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
        // Stateless process: a single state, closed immediately after one level.
        assert_eq!(outcome.stats.states, 1);
        assert!(!outcome.stats.truncated);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for process in [watcher(), safe_watcher()] {
            let sequential = Verifier::new(&process, VerifyOptions::default().with_workers(1))
                .unwrap()
                .verify(
                    &InputSpace::Free,
                    &[Property::NeverRaised("*Alarm*".into())],
                )
                .unwrap();
            let parallel = Verifier::new(&process, VerifyOptions::default().with_workers(4))
                .unwrap()
                .verify(
                    &InputSpace::Free,
                    &[Property::NeverRaised("*Alarm*".into())],
                )
                .unwrap();
            assert_eq!(
                sequential.verdicts, parallel.verdicts,
                "worker count must not change the verdicts"
            );
        }
    }

    #[test]
    fn diamond_discovery_races_yield_deterministic_counterexamples() {
        // `latch` becomes true via (Deadline,!Resume) *or* (!Deadline,Resume):
        // the latched state is discovered twice at the same level through
        // different inputs, and the alarm fires one instant later. The
        // counterexample must be byte-identical for every worker count (the
        // canonical-edge tie-break, not thread interleaving, picks the
        // parent).
        let mut b = ProcessBuilder::new("diamond");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("latch", ValueType::Boolean);
        b.define(
            "latch",
            Expr::or(
                Expr::delay(Expr::var("latch"), Value::Bool(false)),
                Expr::ne(Expr::var("Deadline"), Expr::var("Resume")),
            ),
        );
        b.define("Alarm", Expr::delay(Expr::var("latch"), Value::Bool(false)));
        b.synchronize(&["Deadline", "Resume", "latch", "Alarm"]);
        let process = b.build().unwrap();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let reference = Verifier::new(&process, VerifyOptions::default().with_workers(1))
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
        assert!(!reference.is_violation_free());
        for workers in [2usize, 4, 8] {
            for _ in 0..4 {
                let outcome =
                    Verifier::new(&process, VerifyOptions::default().with_workers(workers))
                        .unwrap()
                        .verify(&InputSpace::Free, &property)
                        .unwrap();
                assert_eq!(reference.verdicts, outcome.verdicts, "workers={workers}");
            }
        }
    }

    #[test]
    fn depth_bound_yields_bounded_verdict() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let verifier =
            Verifier::new(&process, VerifyOptions::default().with_depth_bound(5)).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        assert_eq!(outcome.stats.depth, 5);
        assert!(matches!(
            outcome.verdicts[0].verdict,
            Verdict::PassedBounded { depth: 5 }
        ));
        assert!(outcome.is_violation_free());
        assert!(!outcome.all_proved());
    }

    #[test]
    fn truncated_exploration_never_reports_proved() {
        // Regression: a depth-bound fallback (scheduled exploration of an
        // unbounded counter, cut at one hyper-period) must report
        // PassedBounded — and render as "passed-bounded", never "proved" —
        // for every checked property.
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        for t in 0..3usize {
            trace.set(t, "tick", Value::Event);
        }
        let verifier =
            Verifier::new(&process, VerifyOptions::default().with_depth_bound(6)).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.stats.truncated);
        assert!(!outcome.all_proved());
        for verdict in &outcome.verdicts {
            assert_eq!(verdict.verdict, Verdict::PassedBounded { depth: 6 });
            let summary = verdict.verdict.summary();
            assert!(
                summary.contains("passed-bounded") && !summary.contains("proved"),
                "{summary}"
            );
        }
        assert!(outcome.summary().contains("truncated"));
    }

    #[test]
    fn bounded_response_violation_found() {
        // Resume never answers Deadline within 1 instant if the environment
        // never raises Resume.
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::BoundedResponse {
                    trigger: "Deadline".into(),
                    response: "Resume".into(),
                    bound: 1,
                }],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("violation expected");
        let replay = cex.replay(&watcher()).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn end_to_end_response_is_vacuous_in_a_single_thread_namespace() {
        // An EndToEndResponse over joint product signals never triggers in
        // per-thread scope (the signals do not exist here): the property is
        // vacuously satisfied, which is exactly the blind spot product
        // verification closes.
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::EndToEndResponse {
                    from: "cLink_sent".into(),
                    to: "cLink_consumed".into(),
                    bound: 2,
                }],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
    }

    #[test]
    fn closed_process_silent_step_is_explored() {
        // A process with no inputs still runs autonomously: its single
        // valuation per instant is the silent one, and `Alarm := true` must
        // be found immediately (regression: it used to be vacuously proved).
        let mut b = ProcessBuilder::new("closed");
        b.output("Alarm", ValueType::Boolean);
        b.define("Alarm", Expr::bool(true));
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("alarm must be found");
        assert_eq!(cex.violation_instant, 0);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn state_cap_yields_identical_bounded_verdicts_for_any_worker_count() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let process = b.build().unwrap();
        let property = [Property::NeverRaised("*Alarm*".into())];
        let reference = Verifier::new(
            &process,
            VerifyOptions::default().with_workers(1).with_max_states(3),
        )
        .unwrap()
        .verify(&InputSpace::Free, &property)
        .unwrap();
        assert!(reference.stats.truncated);
        assert!(matches!(
            reference.verdicts[0].verdict,
            Verdict::PassedBounded { .. }
        ));
        for workers in [2usize, 4] {
            let outcome = Verifier::new(
                &process,
                VerifyOptions::default()
                    .with_workers(workers)
                    .with_max_states(3),
            )
            .unwrap()
            .verify(&InputSpace::Free, &property)
            .unwrap();
            assert_eq!(reference.verdicts, outcome.verdicts);
            assert_eq!(reference.stats.states, outcome.stats.states);
        }
    }

    #[test]
    fn two_monitors_expiring_on_the_same_transition_are_both_reported() {
        // Neither NoResponseA nor NoResponseB ever fires: both bounded
        // responses to Deadline expire on the same step and both must be
        // reported as violated (regression: the second used to shadow the
        // first).
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Free,
                &[
                    Property::BoundedResponse {
                        trigger: "Deadline".into(),
                        response: "NoResponseA".into(),
                        bound: 1,
                    },
                    Property::BoundedResponse {
                        trigger: "Deadline".into(),
                        response: "NoResponseB".into(),
                        bound: 1,
                    },
                ],
            )
            .unwrap();
        assert_eq!(outcome.violations().count(), 2, "{}", outcome.summary());
    }

    #[test]
    fn free_mode_dead_end_detected_and_probed_by_replay() {
        // `y := a when false` makes y permanently absent, while `a ^= y`
        // forces a to be absent too: the only candidate valuation (a
        // present) is infeasible, so the initial state is a dead end.
        let mut b = ProcessBuilder::new("stuck");
        b.input("a", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::when(Expr::var("a"), Expr::bool(false)));
        b.synchronize(&["a", "y"]);
        let process = b.build().unwrap();
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&InputSpace::Free, &[Property::DeadlockFree])
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("dead end expected");
        assert_eq!(cex.violation_instant, 0);
        assert!(cex.inputs.is_empty());
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
        assert!(replay.detail.contains("candidate valuations rejected"));
    }

    #[test]
    fn scheduled_exploration_closes_on_periodic_systems() {
        // Drive the watcher with a 3-tick schedule where Resume always
        // accompanies Deadline: alarm-free, and the state space closes
        // (stateless memory × 3 phases).
        let mut trace = Trace::new();
        for t in 0..3usize {
            trace.set(t, "Deadline", Value::Bool(t == 2));
            trace.set(t, "Resume", Value::Bool(t == 2));
        }
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[
                    Property::NeverRaised("*Alarm*".into()),
                    Property::DeadlockFree,
                ],
            )
            .unwrap();
        assert!(outcome.all_proved(), "{}", outcome.summary());
        assert_eq!(outcome.stats.states, 3, "one state per phase");
    }

    #[test]
    fn scheduled_deadlock_detected_and_replayable() {
        // An exclusion constraint makes the scheduled step infeasible.
        let mut b = ProcessBuilder::new("excl");
        b.input("r", ValueType::Event);
        b.input("w", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::default(Expr::var("r"), Expr::var("w")));
        b.exclude(&["r", "w"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        trace.set(0, "r", Value::Event);
        trace.set(1, "r", Value::Event);
        trace.set(1, "w", Value::Event);
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&InputSpace::Scheduled(trace), &[Property::DeadlockFree])
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("deadlock expected");
        assert_eq!(cex.violation_instant, 1);
        let replay = cex.replay(&process).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn scheduled_error_without_deadlock_property_is_fatal() {
        let mut b = ProcessBuilder::new("sync");
        b.input("a", ValueType::Event);
        b.input("b", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::var("a"));
        b.synchronize(&["a", "b"]);
        let process = b.build().unwrap();
        let mut trace = Trace::new();
        trace.set(0, "a", Value::Event);
        let verifier = Verifier::new(&process, VerifyOptions::default()).unwrap();
        let err = verifier
            .verify(
                &InputSpace::Scheduled(trace),
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap_err();
        assert!(matches!(err, VerifyError::Evaluation { instant: 0, .. }));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let verifier = Verifier::new(&watcher(), VerifyOptions::default()).unwrap();
        assert_eq!(
            verifier.verify(&InputSpace::Free, &[]),
            Err(VerifyError::NoProperties)
        );
        assert_eq!(
            verifier.verify(
                &InputSpace::Scheduled(Trace::new()),
                &[Property::DeadlockFree]
            ),
            Err(VerifyError::EmptySchedule)
        );
    }
}
