//! Fault injection on scheduled timing traces, used to demonstrate (and
//! regression-test) that the verifier finds timing violations and that its
//! counterexamples replay.

use serde::{Deserialize, Serialize};
use signal_moc::trace::Trace;
use signal_moc::value::Value;

use crate::product::PortLink;

/// Description of an injected deadline-overrun fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Tick where the job originally resumed (completion).
    pub resume_moved_from: usize,
    /// Tick where the delayed resume was re-inserted (one past the
    /// deadline), when it still fits in the trace.
    pub resume_moved_to: Option<usize>,
    /// Tick of the deadline the job now misses.
    pub deadline_tick: usize,
}

/// Injects a deadline-overrun bug into a scheduled timing trace: the
/// completion (`Resume`) of the job guarding the first `Deadline` tick is
/// delayed until after that deadline, as if the job's execution time had
/// overrun its budget. The translated thread's property check
/// (`Alarm := Deadline and not (Resume or prev done)`) must then fire.
///
/// Signal names are prefixed with `prefix` (empty for a stand-alone thread
/// trace). Returns `None` when the trace contains no deadline tick or no
/// resume tick at or before it (nothing to inject).
pub fn inject_deadline_overrun(trace: &mut Trace, prefix: &str) -> Option<InjectedFault> {
    let resume = format!("{prefix}Resume");
    let deadline = format!("{prefix}Deadline");
    let is_true = |trace: &Trace, t: usize, signal: &str| {
        trace.value(t, signal).map(|v| v.as_bool()).unwrap_or(false)
    };
    let deadline_tick = (0..trace.len()).find(|&t| is_true(trace, t, &deadline))?;
    let resume_tick = (0..=deadline_tick)
        .rev()
        .find(|&t| is_true(trace, t, &resume))?;
    trace.set(resume_tick, resume.clone(), Value::Bool(false));
    let moved_to = deadline_tick + 1;
    let resume_moved_to = if moved_to < trace.len() {
        trace.set(moved_to, resume, Value::Bool(true));
        Some(moved_to)
    } else {
        None
    };
    Some(InjectedFault {
        resume_moved_from: resume_tick,
        resume_moved_to,
        deadline_tick,
    })
}

/// Description of an injected connection-latency fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedLinkFault {
    /// Name of the tampered link.
    pub link: String,
    /// Latency of the link before the fault, in ticks.
    pub original_latency: usize,
    /// Ticks of extra transmission latency added by the fault.
    pub added_latency: usize,
}

/// Injects a connection-latency bug into a product's links: every event
/// sent over the link named `link` is delayed by `added_latency` extra
/// ticks, as if the connection's transmission overran its budget. With a
/// delay larger than the gap to the receiver's next Input Time, the event
/// misses its freeze and is only consumed a full receiver period later —
/// visible to a cross-thread [`crate::Property::EndToEndResponse`] over the
/// product, invisible to per-thread verification (which never sees the
/// connection at all).
///
/// Returns `None` (leaving the links untouched) when no link has that name
/// or `added_latency` is 0.
pub fn inject_connection_latency(
    links: &mut [PortLink],
    link: &str,
    added_latency: usize,
) -> Option<InjectedLinkFault> {
    if added_latency == 0 {
        return None;
    }
    let tampered = links.iter_mut().find(|l| l.name == link)?;
    let original_latency = tampered.latency;
    tampered.latency += added_latency;
    Some(InjectedLinkFault {
        link: tampered.name.clone(),
        original_latency,
        added_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing_trace(prefix: &str) -> Trace {
        // Dispatch at 0, Resume at 1, Deadline at 4, over 6 ticks.
        let mut trace = Trace::new();
        for t in 0..6usize {
            trace.set(t, format!("{prefix}Dispatch"), Value::Bool(t == 0));
            trace.set(t, format!("{prefix}Resume"), Value::Bool(t == 1));
            trace.set(t, format!("{prefix}Deadline"), Value::Bool(t == 4));
        }
        trace
    }

    #[test]
    fn overrun_moves_resume_past_the_deadline() {
        let mut trace = timing_trace("");
        let fault = inject_deadline_overrun(&mut trace, "").unwrap();
        assert_eq!(fault.resume_moved_from, 1);
        assert_eq!(fault.deadline_tick, 4);
        assert_eq!(fault.resume_moved_to, Some(5));
        assert_eq!(trace.value(1, "Resume"), Some(&Value::Bool(false)));
        assert_eq!(trace.value(5, "Resume"), Some(&Value::Bool(true)));
    }

    #[test]
    fn prefixed_signals_are_honoured() {
        let mut trace = timing_trace("th_");
        let fault = inject_deadline_overrun(&mut trace, "th_").unwrap();
        assert_eq!(fault.resume_moved_from, 1);
        assert_eq!(trace.value(1, "th_Resume"), Some(&Value::Bool(false)));
    }

    #[test]
    fn traces_without_deadline_are_left_alone() {
        let mut trace = Trace::new();
        trace.set(0, "Resume", Value::Bool(true));
        let before = trace.clone();
        assert_eq!(inject_deadline_overrun(&mut trace, ""), None);
        assert_eq!(trace, before);
    }

    #[test]
    fn connection_latency_fault_adds_to_the_named_link() {
        let mut links = vec![
            PortLink::event("c1", "tx", "out", "rx", "in").with_latency(1),
            PortLink::event("c2", "tx", "out2", "rx", "in2"),
        ];
        let fault = inject_connection_latency(&mut links, "c1", 8).unwrap();
        assert_eq!(fault.link, "c1");
        assert_eq!(fault.original_latency, 1);
        assert_eq!(fault.added_latency, 8);
        assert_eq!(links[0].latency, 9);
        assert_eq!(links[1].latency, 0, "other links untouched");
    }

    #[test]
    fn connection_latency_fault_requires_a_known_link_and_a_real_delay() {
        let mut links = vec![PortLink::event("c1", "tx", "out", "rx", "in")];
        assert_eq!(inject_connection_latency(&mut links, "ghost", 8), None);
        assert_eq!(inject_connection_latency(&mut links, "c1", 0), None);
        assert_eq!(links[0].latency, 0);
    }
}
