//! Fault injection on scheduled timing traces, used to demonstrate (and
//! regression-test) that the verifier finds timing violations and that its
//! counterexamples replay.

use serde::{Deserialize, Serialize};
use signal_moc::expr::Expr;
use signal_moc::process::{Equation, Process};
use signal_moc::trace::Trace;
use signal_moc::value::Value;

use crate::product::PortLink;

/// Description of an injected deadline-overrun fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Tick where the job originally resumed (completion).
    pub resume_moved_from: usize,
    /// Tick where the delayed resume was re-inserted (one past the
    /// deadline), when it still fits in the trace.
    pub resume_moved_to: Option<usize>,
    /// Tick of the deadline the job now misses.
    pub deadline_tick: usize,
}

/// Injects a deadline-overrun bug into a scheduled timing trace: the
/// completion (`Resume`) of the job guarding the first `Deadline` tick is
/// delayed until after that deadline, as if the job's execution time had
/// overrun its budget. The translated thread's property check
/// (`Alarm := Deadline and not (Resume or prev done)`) must then fire.
///
/// Signal names are prefixed with `prefix` (empty for a stand-alone thread
/// trace). Returns `None` when the trace contains no deadline tick or no
/// resume tick at or before it (nothing to inject).
pub fn inject_deadline_overrun(trace: &mut Trace, prefix: &str) -> Option<InjectedFault> {
    let resume = format!("{prefix}Resume");
    let deadline = format!("{prefix}Deadline");
    let is_true = |trace: &Trace, t: usize, signal: &str| {
        trace.value(t, signal).map(|v| v.as_bool()).unwrap_or(false)
    };
    let deadline_tick = (0..trace.len()).find(|&t| is_true(trace, t, &deadline))?;
    let resume_tick = (0..=deadline_tick)
        .rev()
        .find(|&t| is_true(trace, t, &resume))?;
    trace.set(resume_tick, resume.clone(), Value::Bool(false));
    let moved_to = deadline_tick + 1;
    let resume_moved_to = if moved_to < trace.len() {
        trace.set(moved_to, resume, Value::Bool(true));
        Some(moved_to)
    } else {
        None
    };
    Some(InjectedFault {
        resume_moved_from: resume_tick,
        resume_moved_to,
        deadline_tick,
    })
}

/// Description of an injected connection-latency fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedLinkFault {
    /// Name of the tampered link.
    pub link: String,
    /// Latency of the link before the fault, in ticks.
    pub original_latency: usize,
    /// Ticks of extra transmission latency added by the fault.
    pub added_latency: usize,
}

/// Injects a connection-latency bug into a product's links: every event
/// sent over the link named `link` is delayed by `added_latency` extra
/// ticks, as if the connection's transmission overran its budget. With a
/// delay larger than the gap to the receiver's next Input Time, the event
/// misses its freeze and is only consumed a full receiver period later —
/// visible to a cross-thread [`crate::Property::EndToEndResponse`] over the
/// product, invisible to per-thread verification (which never sees the
/// connection at all).
///
/// Returns `None` (leaving the links untouched) when no link has that name
/// or `added_latency` is 0.
pub fn inject_connection_latency(
    links: &mut [PortLink],
    link: &str,
    added_latency: usize,
) -> Option<InjectedLinkFault> {
    if added_latency == 0 {
        return None;
    }
    let tampered = links.iter_mut().find(|l| l.name == link)?;
    let original_latency = tampered.latency;
    tampered.latency += added_latency;
    Some(InjectedLinkFault {
        link: tampered.name.clone(),
        original_latency,
        added_latency,
    })
}

/// Description of an injected dropped-delivery fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedDropFault {
    /// Name of the tampered link.
    pub link: String,
    /// Latency of the link before the fault, in ticks.
    pub original_latency: usize,
    /// The horizon beyond which the link's deliveries were pushed.
    pub horizon: usize,
}

/// Injects a dropped-delivery bug into a product's links: the link named
/// `link` silently loses every event — modelled by pushing its latency
/// past `horizon`, so within the verified window no delivery ever lands
/// (the product drops deliveries scheduled beyond the horizon). A
/// cross-thread [`crate::Property::EndToEndResponse`] whose response never
/// arrives must then expire.
///
/// Returns `None` (leaving the links untouched) when no link has that
/// name or `horizon` is 0.
pub fn inject_dropped_delivery(
    links: &mut [PortLink],
    link: &str,
    horizon: usize,
) -> Option<InjectedDropFault> {
    if horizon == 0 {
        return None;
    }
    let tampered = links.iter_mut().find(|l| l.name == link)?;
    let original_latency = tampered.latency;
    tampered.latency = horizon + 1;
    Some(InjectedDropFault {
        link: tampered.name.clone(),
        original_latency,
        horizon,
    })
}

/// Description of an injected dispatch-jitter fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedJitterFault {
    /// Ticks every dispatch was delayed by.
    pub jitter: usize,
    /// Number of dispatch events that were moved.
    pub moved: usize,
}

/// Injects dispatch jitter into a scheduled timing trace: every `Dispatch`
/// event is delayed by `jitter` ticks, as if the dispatcher fired late,
/// while `Resume` and `Deadline` stay on the nominal grid. Dispatches
/// jittered past the end of the trace are lost. The resulting trace is no
/// longer the one the scheduler promised, so the dispatch-feasibility
/// oracle, the deadline monitor or a user property may fire — whatever the
/// verifier concludes must still replay.
///
/// Signal names are prefixed with `prefix` (empty for a stand-alone thread
/// trace). Returns `None` when `jitter` is 0 or the trace contains no
/// dispatch event to move.
pub fn inject_dispatch_jitter(
    trace: &mut Trace,
    prefix: &str,
    jitter: usize,
) -> Option<InjectedJitterFault> {
    if jitter == 0 {
        return None;
    }
    let dispatch = format!("{prefix}Dispatch");
    let ticks: Vec<usize> = (0..trace.len())
        .filter(|&t| {
            trace
                .value(t, &dispatch)
                .map(|v| v.as_bool())
                .unwrap_or(false)
        })
        .collect();
    if ticks.is_empty() {
        return None;
    }
    for &t in &ticks {
        trace.set(t, dispatch.clone(), Value::Bool(false));
    }
    let mut moved = 0;
    for &t in &ticks {
        let late = t + jitter;
        if late < trace.len() {
            trace.set(late, dispatch.clone(), Value::Bool(true));
            moved += 1;
        }
    }
    Some(InjectedJitterFault { jitter, moved })
}

/// Description of an injected schedule-corruption fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedCorruptionFault {
    /// Seed of the deterministic flip stream.
    pub seed: u64,
    /// Number of boolean trace cells that were flipped.
    pub flipped: usize,
}

/// Injects seeded corruption into a scheduled timing trace: `flips`
/// pseudo-random boolean cells (tick × signal, drawn from a splitmix64
/// stream over `seed`) are inverted, as if the stored schedule had been
/// damaged. The corruption is deterministic — the same seed flips the
/// same cells — so a finding shrinks and replays. Whatever the verifier
/// concludes on the corrupted trace must agree with the reference
/// semantics and must replay.
///
/// Returns `None` when the trace is empty, has no boolean cells, or
/// `flips` is 0.
pub fn inject_schedule_corruption(
    trace: &mut Trace,
    seed: u64,
    flips: usize,
) -> Option<InjectedCorruptionFault> {
    if flips == 0 || trace.is_empty() {
        return None;
    }
    let signals = trace.signals();
    if signals.is_empty() {
        return None;
    }
    let mut stream = seed;
    let mut next = move || {
        stream = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = stream;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut flipped = 0;
    // Bounded draw budget so a trace with no boolean cells terminates.
    for _ in 0..flips.saturating_mul(8) {
        if flipped == flips {
            break;
        }
        let t = (next() % trace.len() as u64) as usize;
        let signal = signals[(next() % signals.len() as u64) as usize].clone();
        if let Some(Value::Bool(b)) = trace.value(t, &signal).cloned() {
            trace.set(t, signal, Value::Bool(!b));
            flipped += 1;
        }
    }
    if flipped == 0 {
        return None;
    }
    Some(InjectedCorruptionFault { seed, flipped })
}

/// Description of an injected counter-drift fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedDriftFault {
    /// Signal whose defining equation owns the drifted memory.
    pub signal: String,
    /// Original initial value of the memory.
    pub original: i64,
    /// Initial value after the drift.
    pub drifted: i64,
}

/// Injects counter drift into a process definition: one integer-initialised
/// memory (a `$ init` delay or a `cell … init`) is picked pseudo-randomly
/// from `seed` and its initial value shifted by `drift`, as if persisted
/// counter state had decayed between runs. The pick is deterministic — the
/// same seed drifts the same memory — so a finding shrinks and replays.
/// Both verification domains must agree on the drifted process: the
/// interval abstraction may widen the drifted slot, but never at the cost
/// of a verdict a property that *reads* the slot would have produced
/// concretely.
///
/// Returns `None` when `drift` is 0 or the process has no
/// integer-initialised memory (nothing to inject).
pub fn inject_counter_drift(
    process: &mut Process,
    seed: u64,
    drift: i64,
) -> Option<InjectedDriftFault> {
    if drift == 0 {
        return None;
    }
    fn visit(expr: &mut Expr, f: &mut impl FnMut(&mut Value)) {
        match expr {
            Expr::Var(_) | Expr::Const(_) => {}
            Expr::Unary(_, e) | Expr::ClockOf(e) | Expr::ClockWhen(e) => visit(e, f),
            Expr::Binary(_, a, b) | Expr::When(a, b) | Expr::Default(a, b) => {
                visit(a, f);
                visit(b, f);
            }
            Expr::Delay(e, init) => {
                visit(e, f);
                f(init);
            }
            Expr::Cell(input, clock, init) => {
                visit(input, f);
                visit(clock, f);
                f(init);
            }
        }
    }
    let mut total = 0usize;
    for equation in &mut process.equations {
        if let Equation::Definition { expr, .. } | Equation::PartialDefinition { expr, .. } =
            equation
        {
            visit(expr, &mut |init| {
                if matches!(init, Value::Int(_)) {
                    total += 1;
                }
            });
        }
    }
    if total == 0 {
        return None;
    }
    let picked = (seed % total as u64) as usize;
    let mut index = 0usize;
    let mut fault = None;
    for equation in &mut process.equations {
        if let Equation::Definition { target, expr }
        | Equation::PartialDefinition { target, expr } = equation
        {
            visit(expr, &mut |init| {
                if let Value::Int(original) = *init {
                    if index == picked {
                        *init = Value::Int(original + drift);
                        fault = Some(InjectedDriftFault {
                            signal: target.clone(),
                            original,
                            drifted: original + drift,
                        });
                    }
                    index += 1;
                }
            });
        }
    }
    fault
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing_trace(prefix: &str) -> Trace {
        // Dispatch at 0, Resume at 1, Deadline at 4, over 6 ticks.
        let mut trace = Trace::new();
        for t in 0..6usize {
            trace.set(t, format!("{prefix}Dispatch"), Value::Bool(t == 0));
            trace.set(t, format!("{prefix}Resume"), Value::Bool(t == 1));
            trace.set(t, format!("{prefix}Deadline"), Value::Bool(t == 4));
        }
        trace
    }

    #[test]
    fn overrun_moves_resume_past_the_deadline() {
        let mut trace = timing_trace("");
        let fault = inject_deadline_overrun(&mut trace, "").unwrap();
        assert_eq!(fault.resume_moved_from, 1);
        assert_eq!(fault.deadline_tick, 4);
        assert_eq!(fault.resume_moved_to, Some(5));
        assert_eq!(trace.value(1, "Resume"), Some(&Value::Bool(false)));
        assert_eq!(trace.value(5, "Resume"), Some(&Value::Bool(true)));
    }

    #[test]
    fn prefixed_signals_are_honoured() {
        let mut trace = timing_trace("th_");
        let fault = inject_deadline_overrun(&mut trace, "th_").unwrap();
        assert_eq!(fault.resume_moved_from, 1);
        assert_eq!(trace.value(1, "th_Resume"), Some(&Value::Bool(false)));
    }

    #[test]
    fn traces_without_deadline_are_left_alone() {
        let mut trace = Trace::new();
        trace.set(0, "Resume", Value::Bool(true));
        let before = trace.clone();
        assert_eq!(inject_deadline_overrun(&mut trace, ""), None);
        assert_eq!(trace, before);
    }

    #[test]
    fn connection_latency_fault_adds_to_the_named_link() {
        let mut links = vec![
            PortLink::event("c1", "tx", "out", "rx", "in").with_latency(1),
            PortLink::event("c2", "tx", "out2", "rx", "in2"),
        ];
        let fault = inject_connection_latency(&mut links, "c1", 8).unwrap();
        assert_eq!(fault.link, "c1");
        assert_eq!(fault.original_latency, 1);
        assert_eq!(fault.added_latency, 8);
        assert_eq!(links[0].latency, 9);
        assert_eq!(links[1].latency, 0, "other links untouched");
    }

    #[test]
    fn connection_latency_fault_requires_a_known_link_and_a_real_delay() {
        let mut links = vec![PortLink::event("c1", "tx", "out", "rx", "in")];
        assert_eq!(inject_connection_latency(&mut links, "ghost", 8), None);
        assert_eq!(inject_connection_latency(&mut links, "c1", 0), None);
        assert_eq!(links[0].latency, 0);
    }

    #[test]
    fn dropped_delivery_pushes_the_link_past_the_horizon() {
        let mut links = vec![PortLink::event("c1", "tx", "out", "rx", "in").with_latency(1)];
        let fault = inject_dropped_delivery(&mut links, "c1", 24).unwrap();
        assert_eq!(fault.original_latency, 1);
        assert_eq!(fault.horizon, 24);
        assert_eq!(links[0].latency, 25, "no delivery can land in the window");
        assert_eq!(inject_dropped_delivery(&mut links, "ghost", 24), None);
        assert_eq!(inject_dropped_delivery(&mut links, "c1", 0), None);
    }

    #[test]
    fn dispatch_jitter_moves_every_dispatch_and_loses_late_ones() {
        let mut trace = Trace::new();
        for t in 0..6usize {
            trace.set(t, "Dispatch", Value::Bool(t == 0 || t == 4));
            trace.set(t, "Resume", Value::Bool(t == 1));
        }
        let fault = inject_dispatch_jitter(&mut trace, "", 3).unwrap();
        assert_eq!(fault.jitter, 3);
        assert_eq!(fault.moved, 1, "the tick-4 dispatch jitters off the end");
        assert_eq!(trace.value(0, "Dispatch"), Some(&Value::Bool(false)));
        assert_eq!(trace.value(3, "Dispatch"), Some(&Value::Bool(true)));
        assert_eq!(trace.value(4, "Dispatch"), Some(&Value::Bool(false)));
        assert_eq!(
            trace.value(1, "Resume"),
            Some(&Value::Bool(true)),
            "only dispatches move"
        );
        assert_eq!(inject_dispatch_jitter(&mut trace, "", 0), None);
    }

    #[test]
    fn counter_drift_shifts_one_seeded_memory_init() {
        use signal_moc::builder::ProcessBuilder;
        use signal_moc::value::ValueType;

        fn counters() -> Process {
            let mut b = ProcessBuilder::new("drifty");
            b.input("d", ValueType::Boolean);
            b.local("a", ValueType::Integer);
            b.local("t", ValueType::Integer);
            b.define(
                "a",
                Expr::add(Expr::delay(Expr::var("a"), Value::Int(0)), Expr::int(1)),
            );
            b.define(
                "t",
                Expr::add(Expr::delay(Expr::var("t"), Value::Int(3)), Expr::int(1)),
            );
            b.synchronize(&["d", "a", "t"]);
            b.build().unwrap()
        }
        let mut first = counters();
        let fault = inject_counter_drift(&mut first, 0, 2).unwrap();
        assert_eq!(fault.signal, "a");
        assert_eq!(fault.original, 0);
        assert_eq!(fault.drifted, 2);
        assert_ne!(first, counters(), "the init really changed");
        let mut again = counters();
        assert_eq!(inject_counter_drift(&mut again, 0, 2), Some(fault));
        assert_eq!(first, again, "the same seed drifts the same memory");
        let mut second = counters();
        let other = inject_counter_drift(&mut second, 1, 2).unwrap();
        assert_eq!(other.signal, "t");
        assert_eq!(other.original, 3);
        assert_eq!(other.drifted, 5);
    }

    #[test]
    fn counter_drift_needs_a_real_drift_and_an_integer_memory() {
        use signal_moc::builder::ProcessBuilder;
        use signal_moc::value::ValueType;

        let mut b = ProcessBuilder::new("memoryless");
        b.input("d", ValueType::Boolean);
        b.output("echo", ValueType::Boolean);
        b.define("echo", Expr::delay(Expr::var("d"), Value::Bool(false)));
        b.synchronize(&["d", "echo"]);
        let mut process = b.build().unwrap();
        let before = process.clone();
        assert_eq!(inject_counter_drift(&mut process, 7, 0), None);
        assert_eq!(
            inject_counter_drift(&mut process, 7, 2),
            None,
            "boolean memories are not counters"
        );
        assert_eq!(process, before);
    }

    #[test]
    fn schedule_corruption_is_seeded_and_deterministic() {
        let reference = timing_trace("");
        let mut once = reference.clone();
        let mut twice = reference.clone();
        let fault = inject_schedule_corruption(&mut once, 42, 3).unwrap();
        assert_eq!(fault.flipped, 3);
        assert_ne!(once, reference, "cells were flipped");
        inject_schedule_corruption(&mut twice, 42, 3).unwrap();
        assert_eq!(once, twice, "the same seed flips the same cells");
        let mut other = reference.clone();
        inject_schedule_corruption(&mut other, 43, 3).unwrap();
        assert_ne!(once, other, "a different seed flips different cells");
        assert_eq!(inject_schedule_corruption(&mut once, 42, 0), None);
        assert_eq!(inject_schedule_corruption(&mut Trace::new(), 42, 3), None);
    }
}
