//! Canonical execution states of a flat SIGNAL process under exploration.
//!
//! A state is the complete information needed to continue an execution:
//! the memory of every `delay`/`cell` operator, the phase of the scheduler
//! trace driving the inputs (0 in free-input exploration), and the monitor
//! registers of the properties being checked (one register per temporal
//! operator of each compiled LTL monitor — see
//! [`crate::monitor::LtlMonitor`]). States are
//! hashed through a canonical byte encoding ([`StateKey`]) so that real
//! values hash by bit pattern and the seen-set needs no floating-point `Eq`.

use signal_moc::value::Value;

/// Monitor register value meaning "no response deadline pending".
pub const MONITOR_IDLE: u32 = u32::MAX;

/// One explored state of the product (process memory × scheduler phase ×
/// property monitors).
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Memory of every `delay`/`cell` operator, in evaluator pre-order.
    pub memory: Vec<Value>,
    /// Index of the next step in the scheduled input trace (always 0 when
    /// inputs are enumerated freely).
    pub phase: u32,
    /// Concatenated registers of the compiled property monitors (for a
    /// deadline register, [`MONITOR_IDLE`] means no trigger is pending).
    pub monitors: Vec<u32>,
}

impl State {
    /// The canonical hashable key of this state.
    pub fn key(&self) -> StateKey {
        let mut bytes = Vec::with_capacity(8 + self.monitors.len() * 4 + self.memory.len() * 9);
        bytes.extend_from_slice(&self.phase.to_le_bytes());
        for m in &self.monitors {
            bytes.extend_from_slice(&m.to_le_bytes());
        }
        for value in &self.memory {
            encode_value(value, &mut bytes);
        }
        StateKey(bytes)
    }
}

/// Canonical byte encoding of a [`State`], used as the key of the sharded
/// seen-set. Two states compare equal iff their phases, monitors and
/// operator memories are bit-identical (reals compare by IEEE 754 bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey(Vec<u8>);

impl StateKey {
    /// A stable 64-bit hash of the key, used to pick a seen-set shard.
    pub fn shard_hash(&self) -> u64 {
        // FNV-1a: tiny, deterministic across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Length of the canonical encoding in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The canonical encoding itself (used for deterministic tie-breaking
    /// between equal-depth exploration edges).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns `true` when the encoding is empty (never the case for keys
    /// produced by [`State::key`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Event => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(3);
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(memory: Vec<Value>, phase: u32, monitors: Vec<u32>) -> State {
        State {
            memory,
            phase,
            monitors,
        }
    }

    #[test]
    fn identical_states_share_a_key() {
        let a = state(
            vec![Value::Int(3), Value::Bool(true)],
            2,
            vec![MONITOR_IDLE],
        );
        let b = state(
            vec![Value::Int(3), Value::Bool(true)],
            2,
            vec![MONITOR_IDLE],
        );
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key().shard_hash(), b.key().shard_hash());
    }

    #[test]
    fn phase_memory_and_monitors_discriminate() {
        let base = state(vec![Value::Int(3)], 0, vec![MONITOR_IDLE]);
        assert_ne!(
            base.key(),
            state(vec![Value::Int(4)], 0, vec![MONITOR_IDLE]).key()
        );
        assert_ne!(
            base.key(),
            state(vec![Value::Int(3)], 1, vec![MONITOR_IDLE]).key()
        );
        assert_ne!(base.key(), state(vec![Value::Int(3)], 0, vec![2]).key());
    }

    #[test]
    fn reals_compare_by_bits_and_texts_by_content() {
        let a = state(vec![Value::Real(0.5)], 0, vec![]);
        let b = state(vec![Value::Real(0.5)], 0, vec![]);
        let c = state(vec![Value::Real(-0.5)], 0, vec![]);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        let t = state(vec![Value::Text("ab".into())], 0, vec![]);
        let u = state(vec![Value::Text("ab".into())], 0, vec![]);
        assert_eq!(t.key(), u.key());
        assert!(!t.key().is_empty());
        assert!(t.key().len() > 4);
    }

    #[test]
    fn value_kinds_do_not_collide() {
        // Bool(false) vs Int(0) vs Event must all encode differently.
        let kinds = [
            state(vec![Value::Event], 0, vec![]),
            state(vec![Value::Bool(false)], 0, vec![]),
            state(vec![Value::Int(0)], 0, vec![]),
            state(vec![Value::Real(0.0)], 0, vec![]),
            state(vec![Value::Text(String::new())], 0, vec![]),
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.key(), b.key());
            }
        }
    }
}
