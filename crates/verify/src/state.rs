//! Canonical execution states of a flat SIGNAL process under exploration.
//!
//! A state is the complete information needed to continue an execution:
//! the memory of every `delay`/`cell` operator, the phase of the scheduler
//! trace driving the inputs (0 in free-input exploration), and the monitor
//! registers of the properties being checked (one register per temporal
//! operator of each compiled LTL monitor — see
//! [`crate::monitor::LtlMonitor`]). States are
//! hashed through a canonical byte encoding ([`StateKey`]) so that real
//! values hash by bit pattern and the seen-set needs no floating-point `Eq`.
//!
//! The exploration engine does not pass [`StateKey`] values around: keys
//! are *interned*. A [`StateInterner`] is a sharded, append-only arena of
//! key bytes mapping each distinct encoding to a dense `u32` id plus one
//! `Copy` payload (the engine stores its parent link there), so the
//! frontier, the seen-set and the parent tree all reduce to `u32`s. A
//! [`KeyCodec`] produces successor encodings incrementally: it keeps the
//! parent's encoding and per-slot hashes, re-encodes only the memory slots
//! that actually changed, and patches the state hash slot-wise instead of
//! rehashing the whole key.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use signal_moc::value::Value;

/// Monitor register value meaning "no response deadline pending".
pub const MONITOR_IDLE: u32 = u32::MAX;

/// One explored state of the product (process memory × scheduler phase ×
/// property monitors).
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Memory of every `delay`/`cell` operator, in evaluator pre-order.
    pub memory: Vec<Value>,
    /// Index of the next step in the scheduled input trace (always 0 when
    /// inputs are enumerated freely).
    pub phase: u32,
    /// Concatenated registers of the compiled property monitors (for a
    /// deadline register, [`MONITOR_IDLE`] means no trigger is pending).
    pub monitors: Vec<u32>,
}

impl State {
    /// The canonical hashable key of this state.
    pub fn key(&self) -> StateKey {
        let mut bytes = Vec::with_capacity(8 + self.monitors.len() * 4 + self.memory.len() * 9);
        bytes.extend_from_slice(&self.phase.to_le_bytes());
        for m in &self.monitors {
            bytes.extend_from_slice(&m.to_le_bytes());
        }
        for value in &self.memory {
            encode_value(value, &mut bytes);
        }
        StateKey(bytes)
    }
}

/// Canonical byte encoding of a [`State`], used as the key of the sharded
/// seen-set. Two states compare equal iff their phases, monitors and
/// operator memories are bit-identical (reals compare by IEEE 754 bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey(Vec<u8>);

impl StateKey {
    /// A stable 64-bit hash of the key, used to pick a seen-set shard.
    pub fn shard_hash(&self) -> u64 {
        // FNV-1a: tiny, deterministic across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Length of the canonical encoding in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The canonical encoding itself (used for deterministic tie-breaking
    /// between equal-depth exploration edges).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns `true` when the encoding is empty (never the case for keys
    /// produced by [`State::key`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

pub(crate) fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Event => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(3);
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decodes one value of the canonical encoding, advancing `pos`.
fn decode_value(bytes: &[u8], pos: &mut usize) -> Value {
    let tag = bytes[*pos];
    *pos += 1;
    match tag {
        0 => Value::Event,
        1 => {
            let b = bytes[*pos] != 0;
            *pos += 1;
            Value::Bool(b)
        }
        2 => {
            let v = i64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            Value::Int(v)
        }
        3 => {
            let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            Value::Real(f64::from_bits(v))
        }
        4 => {
            let len =
                u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
            *pos += 4;
            let s = std::str::from_utf8(&bytes[*pos..*pos + len]).expect("encoded UTF-8");
            *pos += len;
            Value::Text(s.to_string())
        }
        other => unreachable!("corrupt state key (tag {other})"),
    }
}

/// Two values are key-equal iff their canonical encodings are identical:
/// reals compare by IEEE 754 bit pattern (so `0.0` and `-0.0` stay distinct
/// states, exactly as [`State::key`] encodes them), everything else by
/// structural equality.
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// FNV-1a over a byte slice (the same function [`StateKey::shard_hash`]
/// uses, factored out for the incremental codec).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Position tag of the head (phase + monitors) in the slot-wise hash.
const POS_HEAD: u64 = u64::MAX;

/// Finalising mixer binding a slot hash to its position, so the state hash
/// can be a *wrapping sum* of per-slot terms: patching slot `i` subtracts
/// the old term and adds the new one without touching the other slots.
fn mix(h: u64, pos: u64) -> u64 {
    let mut x = h ^ pos.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Incremental encoder/hasher of successor states.
///
/// Seed the codec with a parent state (from its interned key bytes, or from
/// a [`State`] for the initial state), then call [`KeyCodec::successor`]
/// with the successor's memory: slots that compare bit-equal to the parent
/// are copied byte-for-byte from the parent encoding and their hash terms
/// are reused; only changed slots are re-encoded and re-hashed. The
/// produced bytes are always identical to what [`State::key`] would encode,
/// and the produced hash depends only on the bytes — a patched hash equals
/// a freshly seeded one.
#[derive(Debug, Clone, Default)]
pub struct KeyCodec {
    /// The parent's full canonical encoding.
    parent: Vec<u8>,
    /// The parent's decoded memory, slot by slot.
    parent_memory: Vec<Value>,
    /// Byte range of each memory slot inside `parent`.
    slot_ranges: Vec<(u32, u32)>,
    /// Position-mixed hash term of each slot.
    slot_mixes: Vec<u64>,
    /// Wrapping sum of `slot_mixes`.
    slot_sum: u64,
    /// Successor encoding scratch (owned so callers can borrow it).
    out: Vec<u8>,
}

impl KeyCodec {
    /// A fresh codec; seed it before producing successors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the codec from a full [`State`], returning the state's hash
    /// (the encoding itself is available as [`KeyCodec::parent_key`]).
    pub fn seed_state(&mut self, state: &State) -> u64 {
        self.parent.clear();
        self.parent.extend_from_slice(&state.phase.to_le_bytes());
        for m in &state.monitors {
            self.parent.extend_from_slice(&m.to_le_bytes());
        }
        let head_mix = mix(fnv(&self.parent), POS_HEAD);
        self.parent_memory.clear();
        self.parent_memory.extend_from_slice(&state.memory);
        self.slot_ranges.clear();
        self.slot_mixes.clear();
        self.slot_sum = 0;
        for (i, value) in state.memory.iter().enumerate() {
            let start = self.parent.len();
            encode_value(value, &mut self.parent);
            self.slot_ranges
                .push((start as u32, self.parent.len() as u32));
            let m = mix(fnv(&self.parent[start..]), i as u64);
            self.slot_mixes.push(m);
            self.slot_sum = self.slot_sum.wrapping_add(m);
        }
        head_mix.wrapping_add(self.slot_sum)
    }

    /// Seeds the codec from an interned key encoding, decoding the phase
    /// (returned), the monitor registers (into `monitors`, cleared first)
    /// and the memory (available as [`KeyCodec::parent_memory`]).
    pub fn seed_key(&mut self, key: &[u8], monitor_count: usize, monitors: &mut Vec<u32>) -> u32 {
        self.parent.clear();
        self.parent.extend_from_slice(key);
        let phase = u32::from_le_bytes(key[0..4].try_into().expect("phase bytes"));
        monitors.clear();
        let mut pos = 4usize;
        for _ in 0..monitor_count {
            monitors.push(u32::from_le_bytes(
                key[pos..pos + 4].try_into().expect("monitor bytes"),
            ));
            pos += 4;
        }
        self.parent_memory.clear();
        self.slot_ranges.clear();
        self.slot_mixes.clear();
        self.slot_sum = 0;
        let mut i = 0usize;
        while pos < key.len() {
            let start = pos;
            self.parent_memory.push(decode_value(key, &mut pos));
            self.slot_ranges.push((start as u32, pos as u32));
            let m = mix(fnv(&key[start..pos]), i as u64);
            self.slot_mixes.push(m);
            self.slot_sum = self.slot_sum.wrapping_add(m);
            i += 1;
        }
        phase
    }

    /// The parent's full canonical encoding (what [`State::key`] would
    /// produce for the seeded state).
    pub fn parent_key(&self) -> &[u8] {
        &self.parent
    }

    /// The parent's decoded operator memory.
    pub fn parent_memory(&self) -> &[Value] {
        &self.parent_memory
    }

    /// Encodes and hashes a successor of the seeded parent, patching only
    /// the memory slots that differ (bit-wise) from the parent.
    ///
    /// # Panics
    ///
    /// Panics when `memory.len()` differs from the seeded slot count.
    pub fn successor(&mut self, memory: &[Value], phase: u32, monitors: &[u32]) -> (u64, &[u8]) {
        assert_eq!(
            memory.len(),
            self.slot_ranges.len(),
            "successor memory width differs from the seeded parent"
        );
        self.out.clear();
        self.out.extend_from_slice(&phase.to_le_bytes());
        for m in monitors {
            self.out.extend_from_slice(&m.to_le_bytes());
        }
        let head_mix = mix(fnv(&self.out), POS_HEAD);
        let mut sum = self.slot_sum;
        for (i, value) in memory.iter().enumerate() {
            if value_bits_eq(value, &self.parent_memory[i]) {
                let (start, end) = self.slot_ranges[i];
                self.out
                    .extend_from_slice(&self.parent[start as usize..end as usize]);
            } else {
                let start = self.out.len();
                encode_value(value, &mut self.out);
                let m = mix(fnv(&self.out[start..]), i as u64);
                sum = sum.wrapping_sub(self.slot_mixes[i]).wrapping_add(m);
            }
        }
        (head_mix.wrapping_add(sum), &self.out)
    }
}

/// Sentinel for an empty open-addressing slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// One shard of a [`StateInterner`]: an append-only byte arena holding the
/// key encodings back to back, parallel per-entry metadata, and an
/// open-addressing table mapping hashes to local entry indices.
#[derive(Debug)]
struct InternShard<P> {
    arena: Vec<u8>,
    /// `(start, end)` byte range of each entry in `arena`.
    spans: Vec<(u32, u32)>,
    hashes: Vec<u64>,
    payloads: Vec<P>,
    /// Open-addressing table of local indices (linear probing, grown at
    /// 50% load).
    table: Vec<u32>,
}

impl<P> InternShard<P> {
    fn with_capacity(entries: usize) -> Self {
        let table = (entries.max(4) * 2).next_power_of_two();
        Self {
            arena: Vec::new(),
            spans: Vec::with_capacity(entries),
            hashes: Vec::with_capacity(entries),
            payloads: Vec::with_capacity(entries),
            table: vec![EMPTY_SLOT; table],
        }
    }

    fn key(&self, local: usize) -> &[u8] {
        let (start, end) = self.spans[local];
        &self.arena[start as usize..end as usize]
    }

    fn grow(&mut self) {
        let mut table = vec![EMPTY_SLOT; self.table.len() * 2];
        let mask = table.len() - 1;
        for (local, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = local as u32;
        }
        self.table = table;
    }
}

/// A sharded, append-only intern table mapping canonical state encodings to
/// dense `u32` ids, each carrying one `Copy` payload (the exploration
/// engine stores its parent link there).
///
/// Ids pack the shard index in the low bits and the within-shard index in
/// the high bits; they are stable for the lifetime of the interner but
/// *allocation-ordered*, so nothing deterministic may be derived from their
/// numeric value under concurrent interning — the engine only ever compares
/// key bytes, never ids.
#[derive(Debug)]
pub struct StateInterner<P> {
    shards: Vec<Mutex<InternShard<P>>>,
    shard_bits: u32,
    len: AtomicUsize,
}

impl<P: Copy> StateInterner<P> {
    /// An interner with `shards` shards (rounded up to a power of two) and
    /// room for about `capacity` states before any rehash.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(4);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(InternShard::with_capacity(per_shard)))
                .collect(),
            shard_bits: shards.trailing_zeros(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of distinct interned states.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of canonical key encodings held in the shard arenas —
    /// the interner's memory high-water mark for telemetry. Locks each
    /// shard briefly; intended for per-level gauge reads, not hot paths.
    pub fn arena_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").arena.len())
            .sum()
    }

    fn locate(&self, id: u32) -> (&Mutex<InternShard<P>>, usize) {
        let mask = (1u32 << self.shard_bits) - 1;
        (
            &self.shards[(id & mask) as usize],
            (id >> self.shard_bits) as usize,
        )
    }

    /// Interns `key` under `hash`. Returns the id and `None` when the key
    /// was fresh (its payload is then `payload()`), or the id and a copy of
    /// the existing payload when the key was already interned.
    pub fn intern(&self, hash: u64, key: &[u8], payload: impl FnOnce() -> P) -> (u32, Option<P>) {
        let shard_idx = ((hash >> 32) as usize) & (self.shards.len() - 1);
        let mut shard = self.shards[shard_idx]
            .lock()
            .expect("interner shard poisoned");
        let mask = shard.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = shard.table[slot];
            if entry == EMPTY_SLOT {
                break;
            }
            let local = entry as usize;
            if shard.hashes[local] == hash && shard.key(local) == key {
                let id = ((local as u32) << self.shard_bits) | shard_idx as u32;
                return (id, Some(shard.payloads[local]));
            }
            slot = (slot + 1) & mask;
        }
        let local = shard.spans.len();
        let start = shard.arena.len() as u32;
        shard.arena.extend_from_slice(key);
        let end = shard.arena.len() as u32;
        shard.spans.push((start, end));
        shard.hashes.push(hash);
        shard.payloads.push(payload());
        shard.table[slot] = local as u32;
        if (local + 1) * 2 >= shard.table.len() {
            shard.grow();
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        (((local as u32) << self.shard_bits) | shard_idx as u32, None)
    }

    /// A copy of the payload of an interned state.
    pub fn payload(&self, id: u32) -> P {
        let (shard, local) = self.locate(id);
        shard.lock().expect("interner shard poisoned").payloads[local]
    }

    /// Replaces the payload of an interned state (the engine's
    /// deterministic parent-link tie-break).
    pub fn set_payload(&self, id: u32, payload: P) {
        let (shard, local) = self.locate(id);
        shard.lock().expect("interner shard poisoned").payloads[local] = payload;
    }

    /// Runs `f` over the key bytes of an interned state. The shard stays
    /// locked for the duration of `f`; do not call back into the interner.
    pub fn with_key<R>(&self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let (shard, local) = self.locate(id);
        f(shard.lock().expect("interner shard poisoned").key(local))
    }

    /// Copies the key bytes of an interned state into `out` (cleared
    /// first).
    pub fn copy_key(&self, id: u32, out: &mut Vec<u8>) {
        out.clear();
        self.with_key(id, |key| out.extend_from_slice(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(memory: Vec<Value>, phase: u32, monitors: Vec<u32>) -> State {
        State {
            memory,
            phase,
            monitors,
        }
    }

    #[test]
    fn identical_states_share_a_key() {
        let a = state(
            vec![Value::Int(3), Value::Bool(true)],
            2,
            vec![MONITOR_IDLE],
        );
        let b = state(
            vec![Value::Int(3), Value::Bool(true)],
            2,
            vec![MONITOR_IDLE],
        );
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key().shard_hash(), b.key().shard_hash());
    }

    #[test]
    fn phase_memory_and_monitors_discriminate() {
        let base = state(vec![Value::Int(3)], 0, vec![MONITOR_IDLE]);
        assert_ne!(
            base.key(),
            state(vec![Value::Int(4)], 0, vec![MONITOR_IDLE]).key()
        );
        assert_ne!(
            base.key(),
            state(vec![Value::Int(3)], 1, vec![MONITOR_IDLE]).key()
        );
        assert_ne!(base.key(), state(vec![Value::Int(3)], 0, vec![2]).key());
    }

    #[test]
    fn reals_compare_by_bits_and_texts_by_content() {
        let a = state(vec![Value::Real(0.5)], 0, vec![]);
        let b = state(vec![Value::Real(0.5)], 0, vec![]);
        let c = state(vec![Value::Real(-0.5)], 0, vec![]);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        let t = state(vec![Value::Text("ab".into())], 0, vec![]);
        let u = state(vec![Value::Text("ab".into())], 0, vec![]);
        assert_eq!(t.key(), u.key());
        assert!(!t.key().is_empty());
        assert!(t.key().len() > 4);
    }

    #[test]
    fn value_kinds_do_not_collide() {
        // Bool(false) vs Int(0) vs Event must all encode differently.
        let kinds = [
            state(vec![Value::Event], 0, vec![]),
            state(vec![Value::Bool(false)], 0, vec![]),
            state(vec![Value::Int(0)], 0, vec![]),
            state(vec![Value::Real(0.0)], 0, vec![]),
            state(vec![Value::Text(String::new())], 0, vec![]),
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.key(), b.key());
            }
        }
    }

    #[test]
    fn codec_seed_matches_full_encoding() {
        let s = state(
            vec![
                Value::Int(7),
                Value::Bool(true),
                Value::Real(1.5),
                Value::Text("hi".into()),
                Value::Event,
            ],
            3,
            vec![MONITOR_IDLE, 2],
        );
        let mut codec = KeyCodec::new();
        codec.seed_state(&s);
        assert_eq!(codec.parent_key(), s.key().as_bytes());
        assert_eq!(codec.parent_memory(), s.memory.as_slice());
    }

    #[test]
    fn codec_successor_bytes_and_hash_match_fresh_seed() {
        let parent = state(
            vec![Value::Int(7), Value::Bool(true), Value::Real(0.5)],
            1,
            vec![MONITOR_IDLE],
        );
        let child = state(
            vec![Value::Int(8), Value::Bool(true), Value::Real(0.5)],
            2,
            vec![4],
        );
        let mut codec = KeyCodec::new();
        codec.seed_state(&parent);
        let (hash, bytes) = codec.successor(&child.memory, child.phase, &child.monitors);
        assert_eq!(bytes, child.key().as_bytes());
        let mut fresh = KeyCodec::new();
        assert_eq!(hash, fresh.seed_state(&child));
    }

    #[test]
    fn codec_distinguishes_negative_zero_successors() {
        let parent = state(vec![Value::Real(0.0)], 0, vec![]);
        let mut codec = KeyCodec::new();
        codec.seed_state(&parent);
        let (hash_pos, bytes_pos) = codec.successor(&[Value::Real(0.0)], 0, &[]);
        let bytes_pos = bytes_pos.to_vec();
        let (hash_neg, bytes_neg) = codec.successor(&[Value::Real(-0.0)], 0, &[]);
        assert_ne!(bytes_pos, bytes_neg);
        assert_ne!(hash_pos, hash_neg);
        assert_eq!(
            bytes_neg,
            state(vec![Value::Real(-0.0)], 0, vec![]).key().as_bytes()
        );
    }

    #[test]
    fn codec_round_trips_through_key_seeding() {
        let s = state(
            vec![Value::Int(-4), Value::Text("x".into()), Value::Bool(false)],
            5,
            vec![1, MONITOR_IDLE],
        );
        let mut codec = KeyCodec::new();
        let hash = codec.seed_state(&s);
        let key = codec.parent_key().to_vec();
        let mut reseeded = KeyCodec::new();
        let mut monitors = Vec::new();
        let phase = reseeded.seed_key(&key, s.monitors.len(), &mut monitors);
        assert_eq!(phase, s.phase);
        assert_eq!(monitors, s.monitors);
        assert_eq!(reseeded.parent_memory(), s.memory.as_slice());
        assert_eq!(reseeded.parent_key(), key.as_slice());
        // Identity successor reproduces the seeded hash.
        let (h, bytes) = reseeded.successor(&s.memory, s.phase, &s.monitors);
        assert_eq!(h, hash);
        assert_eq!(bytes, key.as_slice());
    }

    #[test]
    fn interner_dedups_and_reports_freshness() {
        let interner: StateInterner<u32> = StateInterner::new(4, 8);
        let (a, existing) = interner.intern(42, b"alpha", || 7);
        assert!(existing.is_none());
        let (b, existing) = interner.intern(42, b"alpha", || 99);
        assert_eq!(a, b);
        assert_eq!(existing, Some(7));
        let (c, existing) = interner.intern(42, b"beta", || 11);
        assert_ne!(a, c);
        assert!(existing.is_none());
        assert_eq!(interner.len(), 2);
        assert!(!interner.is_empty());
    }

    #[test]
    fn interner_payload_and_key_round_trip() {
        let interner: StateInterner<u32> = StateInterner::new(2, 4);
        let (id, _) = interner.intern(1234, b"some key bytes", || 5);
        assert_eq!(interner.payload(id), 5);
        interner.set_payload(id, 17);
        assert_eq!(interner.payload(id), 17);
        assert!(interner.with_key(id, |k| k == b"some key bytes"));
        let mut out = vec![0u8; 3];
        interner.copy_key(id, &mut out);
        assert_eq!(out, b"some key bytes");
    }

    #[test]
    fn interner_survives_rehash_growth() {
        let interner: StateInterner<usize> = StateInterner::new(1, 2);
        let mut ids = Vec::new();
        for i in 0..200usize {
            let key = format!("state-{i}");
            let (id, existing) = interner.intern(fnv(key.as_bytes()), key.as_bytes(), || i);
            assert!(existing.is_none());
            ids.push((id, key));
        }
        assert_eq!(interner.len(), 200);
        for (i, (id, key)) in ids.iter().enumerate() {
            assert_eq!(interner.payload(*id), i);
            assert!(interner.with_key(*id, |k| k == key.as_bytes()));
            let (again, existing) = interner.intern(fnv(key.as_bytes()), key.as_bytes(), || 0);
            assert_eq!(again, *id);
            assert_eq!(existing, Some(i));
        }
    }
}
