//! Compositional product verification of communicating scheduled threads.
//!
//! Per-thread verification ([`crate::Verifier`] over
//! [`crate::InputSpace::Scheduled`]) checks each translated thread against
//! its own timing trace with every event-port input left at its scheduled
//! default — cross-thread properties are invisible at that scope. This
//! module closes the gap: a [`ProductSystem`] bundles the flattened SIGNAL
//! processes of several threads with their scheduled timing traces and the
//! event-port connections between them ([`PortLink`]), and a
//! [`ProductVerifier`] explores the *synchronous product* of the components.
//!
//! A connection is a synchronising action: the sender's scheduled
//! `<port>_output_time` emission fixes the matching receiver input
//! `<port>_in` (after the link's latency) instead of leaving it at the
//! scheduled default. Product states reuse the canonical byte-encoded
//! [`State`]: the concatenated per-thread operator memories, the joint
//! scheduler phase, and the registers of the response monitors. The joint
//! schedule makes the product deterministic — one execution path per phase
//! — so the exploration is a single run that either closes (states
//! recurring at the same phase are deduplicated across hyper-period
//! repetitions, proving the periodic system for unbounded time) or stops at
//! the depth bound with a [`Verdict::PassedBounded`](crate::Verdict::PassedBounded).
//!
//! Cross-thread latency is expressed with
//! [`Property::EndToEndResponse`] over the link-derived joint signals
//! `<link>_sent` (the sender released at least one event) and
//! `<link>_consumed` (the receiver froze at least one delivered event).
//! Violations come back as joint [`Counterexample`] traces whose steps carry
//! `<component>_`-prefixed inputs: [`ProductVerifier::project`] recovers the
//! per-thread input trace of any component (replayable in a plain
//! [`polysim::Simulator`]), and [`ProductVerifier::replay`] re-executes the
//! whole counterexample in a [`LockstepCoSim`] — an independent lockstep
//! co-simulation of the constituent threads — for confirmation outside the
//! model checker.

use std::collections::{HashMap, HashSet};

use polysim::Simulator;
use serde::{Deserialize, Serialize};
use signal_moc::eval::Evaluator;
use signal_moc::process::Process;
use signal_moc::trace::{Trace, TraceStep};
use signal_moc::value::Value;
use signal_moc::InstantView;

use crate::counterexample::{Counterexample, ReplayReport};
use crate::domain::{Domain, SlotAbstraction};
use crate::engine::{self, Expander, Sink};
use crate::explore::{VerificationOutcome, VerifyError, VerifyOptions};
use crate::monitor::{compile_properties, CompiledProperty};
use crate::property::Property;
use crate::state::{self, KeyCodec, State};

/// One thread of a product: its flattened SIGNAL process and the scheduled
/// timing trace driving it over the joint hyper-period.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductComponent {
    /// Component name, used as the `<name>_` prefix of its signals in the
    /// joint namespace (typically the AADL thread instance name).
    pub name: String,
    /// The flattened process, as verified by `polyverify`/run by `polysim`.
    pub process: Process,
    /// The scheduler-generated timing trace of this thread. Every component
    /// of a product must use the same horizon (the joint hyper-period); the
    /// phase wraps, so the trace describes the periodic system.
    pub schedule: Trace,
}

/// An event-port connection between two components of a product: the
/// source's scheduled `source_signal` emissions are delivered to the
/// target's `target_signal` input after `latency` ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortLink {
    /// Connection name, used as the `<name>_` prefix of the link-derived
    /// joint signals (`<name>_sent`, `<name>_received`, `<name>_consumed`).
    pub name: String,
    /// Name of the sending component.
    pub source: String,
    /// Signal of the source *schedule* whose truth marks an emission
    /// (conventionally `<port>_output_time`, the port's Output Time).
    pub source_signal: String,
    /// Name of the receiving component.
    pub target: String,
    /// Input signal of the target process that carries the delivered event
    /// (conventionally `<port>_in`).
    pub target_signal: String,
    /// Signal of the target schedule marking the receiver's Input Time
    /// (conventionally `<port>_frozen_time`); with `target_count` it derives
    /// the `<name>_consumed` joint signal.
    pub target_freeze: Option<String>,
    /// Signal of the target process counting the events frozen at the last
    /// Input Time (conventionally `<port>_frozen_count`).
    pub target_count: Option<String>,
    /// Transmission latency in ticks (0 = same-tick delivery). Events whose
    /// delivery would land past the schedule horizon are dropped — exactly
    /// the behaviour a connection-latency fault injects.
    pub latency: usize,
}

impl PortLink {
    /// A link over the conventional signal names of the AADL translation:
    /// `<source_port>_output_time` on the sender side; `<target_port>_in`,
    /// `<target_port>_frozen_time` and `<target_port>_frozen_count` on the
    /// receiver side; latency 0.
    pub fn event(
        name: impl Into<String>,
        source: impl Into<String>,
        source_port: &str,
        target: impl Into<String>,
        target_port: &str,
    ) -> Self {
        Self {
            name: name.into(),
            source: source.into(),
            source_signal: format!("{source_port}_output_time"),
            target: target.into(),
            target_signal: format!("{target_port}_in"),
            target_freeze: Some(format!("{target_port}_frozen_time")),
            target_count: Some(format!("{target_port}_frozen_count")),
            latency: 0,
        }
    }

    /// Sets the transmission latency in ticks.
    #[must_use]
    pub fn with_latency(mut self, latency: usize) -> Self {
        self.latency = latency;
        self
    }

    /// Joint-namespace signal: the source released at least one event at
    /// this tick.
    pub fn sent_signal(&self) -> String {
        format!("{}_sent", self.name)
    }

    /// Joint-namespace signal: an event of this link is delivered to the
    /// target at this tick.
    pub fn received_signal(&self) -> String {
        format!("{}_received", self.name)
    }

    /// Joint-namespace signal: the target froze at least one event at this
    /// tick (its Input Time fired with a non-empty frozen FIFO). Only
    /// derived when [`PortLink::target_freeze`] and
    /// [`PortLink::target_count`] are set.
    pub fn consumed_signal(&self) -> String {
        format!("{}_consumed", self.name)
    }
}

/// Per-link delivery pattern over the horizon, derived from the schedules.
#[derive(Debug, Clone, PartialEq)]
struct LinkActivity {
    sent: Vec<bool>,
    received: Vec<bool>,
}

/// The closed system under product verification: components, links, and the
/// wired per-component input traces (schedules with connected inputs
/// overridden by the senders' emissions).
#[derive(Debug, Clone, PartialEq)]
pub struct ProductSystem {
    components: Vec<ProductComponent>,
    links: Vec<PortLink>,
    /// Per-component input traces after connection wiring.
    wired: Vec<Trace>,
    activity: Vec<LinkActivity>,
    horizon: usize,
    /// Number of emissions whose delivery would land at or past the
    /// horizon and was therefore not wired.
    dropped_deliveries: usize,
}

impl ProductSystem {
    /// Assembles and wires a product system.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::InvalidProduct`] when there are no components,
    /// component or link names collide, schedules are empty or of unequal
    /// length, or a link references an unknown component, an unknown source
    /// schedule signal, or a target signal that is not an input of the
    /// target process.
    pub fn new(
        components: Vec<ProductComponent>,
        links: Vec<PortLink>,
    ) -> Result<Self, VerifyError> {
        if components.is_empty() {
            return Err(VerifyError::InvalidProduct("no components".into()));
        }
        let horizon = components[0].schedule.len();
        if horizon == 0 {
            return Err(VerifyError::InvalidProduct(format!(
                "component `{}` has an empty schedule",
                components[0].name
            )));
        }
        let mut names = HashSet::new();
        for component in &components {
            if !names.insert(component.name.clone()) {
                return Err(VerifyError::InvalidProduct(format!(
                    "duplicate component name `{}`",
                    component.name
                )));
            }
            if component.schedule.len() != horizon {
                return Err(VerifyError::InvalidProduct(format!(
                    "component `{}` has schedule length {}, expected the joint horizon {}",
                    component.name,
                    component.schedule.len(),
                    horizon
                )));
            }
        }
        // Joint signals are `<name>_<signal>`: two names where one (plus
        // the separating underscore) prefixes the other would let signals
        // of different owners collide in the joint namespace — and
        // `TraceStep::set` keeps the last writer silently. Reject the
        // ambiguity up front, across components and links alike.
        let all_names: Vec<&str> = components
            .iter()
            .map(|c| c.name.as_str())
            .chain(links.iter().map(|l| l.name.as_str()))
            .collect();
        for a in &all_names {
            for b in &all_names {
                if a != b && b.starts_with(&format!("{a}_")) {
                    return Err(VerifyError::InvalidProduct(format!(
                        "names `{a}` and `{b}` are prefix-ambiguous: joint signals \
                         `{a}_...` could collide"
                    )));
                }
            }
        }
        let index_of = |name: &str| components.iter().position(|c| c.name == name);
        let mut link_names = HashSet::new();
        for link in &links {
            if !link_names.insert(link.name.clone()) {
                return Err(VerifyError::InvalidProduct(format!(
                    "duplicate link name `{}`",
                    link.name
                )));
            }
            if names.contains(&link.name) {
                return Err(VerifyError::InvalidProduct(format!(
                    "link `{}` shadows a component name (derived signals would collide)",
                    link.name
                )));
            }
            let Some(source) = index_of(&link.source) else {
                return Err(VerifyError::InvalidProduct(format!(
                    "link `{}` references unknown source component `{}`",
                    link.name, link.source
                )));
            };
            if index_of(&link.target).is_none() {
                return Err(VerifyError::InvalidProduct(format!(
                    "link `{}` references unknown target component `{}`",
                    link.name, link.target
                )));
            }
            if !components[source]
                .schedule
                .signals()
                .contains(&link.source_signal)
            {
                return Err(VerifyError::InvalidProduct(format!(
                    "link `{}`: source schedule of `{}` has no signal `{}`",
                    link.name, link.source, link.source_signal
                )));
            }
            let target = &components[index_of(&link.target).expect("checked above")];
            if !target
                .process
                .inputs()
                .any(|decl| decl.name == link.target_signal)
            {
                return Err(VerifyError::InvalidProduct(format!(
                    "link `{}`: process of `{}` has no input `{}`",
                    link.name, link.target, link.target_signal
                )));
            }
        }

        // Wire the connections: each emission of the source schedule fixes
        // the matching target input `latency` ticks later. A delivery that
        // would land at or past the horizon is dropped — the wired traces
        // must stay periodic for the phase to wrap — and *counted*: the
        // wired product then under-approximates the real periodic system
        // (which would deliver the event in the next period), so the
        // verifier downgrades closure proofs to bounded verdicts whenever
        // any delivery was dropped.
        let mut wired: Vec<Trace> = components.iter().map(|c| c.schedule.clone()).collect();
        let mut activity = Vec::with_capacity(links.len());
        let mut dropped_deliveries = 0usize;
        for link in &links {
            let source = index_of(&link.source).expect("validated above");
            let target = index_of(&link.target).expect("validated above");
            let mut sent = vec![false; horizon];
            let mut received = vec![false; horizon];
            for (t, is_sent) in sent.iter_mut().enumerate() {
                *is_sent = components[source]
                    .schedule
                    .value(t, &link.source_signal)
                    .map(Value::as_bool)
                    .unwrap_or(false);
                if !*is_sent {
                    continue;
                }
                let arrival = t + link.latency;
                if arrival < horizon {
                    received[arrival] = true;
                    wired[target].set(arrival, link.target_signal.clone(), Value::Bool(true));
                } else {
                    dropped_deliveries += 1;
                }
            }
            activity.push(LinkActivity { sent, received });
        }
        Ok(Self {
            components,
            links,
            wired,
            activity,
            horizon,
            dropped_deliveries,
        })
    }

    /// The components of the product, in exploration order.
    pub fn components(&self) -> &[ProductComponent] {
        &self.components
    }

    /// The event-port links between the components.
    pub fn links(&self) -> &[PortLink] {
        &self.links
    }

    /// The joint schedule horizon (the hyper-period in ticks).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of emissions whose delivery fell at or past the horizon and
    /// was dropped from the wiring. When non-zero, the wired product
    /// under-approximates the real periodic system (which would carry the
    /// event into the next period), so [`ProductVerifier::verify`] reports
    /// [`Verdict::PassedBounded`](crate::Verdict::PassedBounded) instead of
    /// [`Verdict::Proved`](crate::Verdict::Proved) even when the exploration
    /// closes.
    pub fn dropped_deliveries(&self) -> usize {
        self.dropped_deliveries
    }

    /// The wired input trace of one component (its schedule with connected
    /// inputs overridden by the senders' deliveries), by component name.
    pub fn wired_trace(&self, component: &str) -> Option<&Trace> {
        self.components
            .iter()
            .position(|c| c.name == component)
            .map(|i| &self.wired[i])
    }

    /// The joint input step of one phase: every component's wired inputs,
    /// prefixed with `<component>_`.
    fn joint_input(&self, phase: usize) -> TraceStep {
        let mut joint = TraceStep::new();
        for (component, wired) in self.components.iter().zip(&self.wired) {
            if let Some(step) = wired.step(phase) {
                for (signal, value) in step.iter() {
                    joint.set(format!("{}_{signal}", component.name), value.clone());
                }
            }
        }
        joint
    }

    /// Merges the per-component resolved steps of one phase into the joint
    /// step: `<component>_`-prefixed signals plus the link-derived
    /// `_sent`/`_received`/`_consumed` signals.
    fn joint_resolved(&self, phase: usize, resolved: &[TraceStep]) -> TraceStep {
        let mut joint = TraceStep::new();
        for (component, step) in self.components.iter().zip(resolved) {
            for (signal, value) in step.iter() {
                joint.set(format!("{}_{signal}", component.name), value.clone());
            }
        }
        for (link, activity) in self.links.iter().zip(&self.activity) {
            joint.set(link.sent_signal(), Value::Bool(activity.sent[phase]));
            joint.set(
                link.received_signal(),
                Value::Bool(activity.received[phase]),
            );
            if let (Some(freeze), Some(count)) = (&link.target_freeze, &link.target_count) {
                let target = self
                    .components
                    .iter()
                    .position(|c| c.name == link.target)
                    .expect("validated at construction");
                let froze = resolved[target]
                    .get(freeze)
                    .map(Value::as_bool)
                    .unwrap_or(false);
                let nonempty = resolved[target]
                    .get(count)
                    .map(Value::as_bool)
                    .unwrap_or(false);
                joint.set(link.consumed_signal(), Value::Bool(froze && nonempty));
            }
        }
        joint
    }
}

/// A lockstep co-simulation of the components of a [`ProductSystem`]: one
/// [`polysim::Simulator`] per thread, advanced tick by tick over the wired
/// traces, producing the joint resolved trace. This is the independent
/// execution path used to confirm product counterexamples
/// ([`ProductVerifier::replay`]) and to cross-validate product verdicts by
/// brute force in the test suite.
#[derive(Debug, Clone)]
pub struct LockstepCoSim<'a> {
    system: &'a ProductSystem,
    simulators: Vec<Simulator>,
}

/// The first non-executable step of a lockstep co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSimFailure {
    /// Tick of the failing step.
    pub tick: usize,
    /// Name of the component whose scheduled step was not executable.
    pub component: String,
    /// Evaluator error text.
    pub detail: String,
}

impl<'a> LockstepCoSim<'a> {
    /// Builds one simulator per component, all at their initial state.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn new(system: &'a ProductSystem) -> Result<Self, VerifyError> {
        let simulators = system
            .components
            .iter()
            .map(|c| Simulator::new(&c.process))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { system, simulators })
    }

    /// Runs `ticks` instants in lockstep (the phase wraps at the horizon),
    /// returning the joint resolved trace of the executed prefix and the
    /// first non-executable step, if any (the joint trace then stops just
    /// before it).
    pub fn run(&mut self, ticks: usize) -> (Trace, Option<CoSimFailure>) {
        let mut joint = Trace::new();
        for tick in 0..ticks {
            let phase = tick % self.system.horizon;
            let mut resolved = Vec::with_capacity(self.simulators.len());
            for (idx, simulator) in self.simulators.iter_mut().enumerate() {
                let step = self.system.wired[idx]
                    .step(phase)
                    .cloned()
                    .unwrap_or_default();
                let one: Trace = std::iter::once(step).collect();
                match simulator.run(&one) {
                    Ok(out) => resolved.push(out.step(0).cloned().unwrap_or_default()),
                    Err(e) => {
                        return (
                            joint,
                            Some(CoSimFailure {
                                tick,
                                component: self.system.components[idx].name.clone(),
                                detail: e.to_string(),
                            }),
                        )
                    }
                }
            }
            joint.push(self.system.joint_resolved(phase, &resolved));
        }
        (joint, None)
    }
}

/// The product model checker: explores the synchronous product of the
/// components of a [`ProductSystem`] under their wired schedules and checks
/// safety properties over the joint namespace.
///
/// The joint schedule is deterministic, so the exploration is a single path
/// whose states — concatenated per-thread memories × joint phase × monitor
/// registers — are deduplicated across hyper-period repetitions: it either
/// closes ([`Verdict::Proved`](crate::Verdict::Proved) for unbounded time)
/// or stops at [`VerifyOptions::depth_bound`]
/// ([`Verdict::PassedBounded`](crate::Verdict::PassedBounded)).
///
/// The exploration runs on the shared exploration engine (an interned
/// chain of joint states); the frontier of the deterministic product is a
/// single state per level, so the run is sequential regardless of
/// [`VerifyOptions::workers`]. The per-instant work is cut instead by
/// *memoizing* each component's resolved instants, keyed by its scheduler
/// phase and local operator memory (gated by [`VerifyOptions::pruning`]):
/// whenever a component's local state recurs before the joint product
/// closes — periods divide the hyper-period, so components cycle much
/// faster than the product — its cached resolved step and successor memory
/// are replayed without touching the evaluator. The memo key fully
/// determines the evaluator result, so verdicts, counterexamples and
/// exploration counts are bit-identical with the memo on or off; the memo's
/// own activity is reported in
/// [`ExplorationStats::memo_hits`](crate::ExplorationStats) and
/// [`ExplorationStats::memo_misses`](crate::ExplorationStats) (with the
/// memo off every component step is a miss).
#[derive(Debug, Clone, PartialEq)]
pub struct ProductVerifier {
    system: ProductSystem,
    options: VerifyOptions,
}

impl ProductVerifier {
    /// Prepares a product verifier: validates every component process by
    /// constructing its evaluator (the same flat-process gate as
    /// [`crate::Verifier::new`]).
    ///
    /// # Errors
    ///
    /// Propagates per-component validation errors ([`VerifyError::Signal`]).
    pub fn new(system: ProductSystem, options: VerifyOptions) -> Result<Self, VerifyError> {
        for component in &system.components {
            Evaluator::new(&component.process)?;
        }
        Ok(Self { system, options })
    }

    /// The product system under verification.
    pub fn system(&self) -> &ProductSystem {
        &self.system
    }

    /// The active options.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Explores the product and checks every property of `properties` —
    /// built-in shapes and user past-time LTL properties alike — over the
    /// joint namespace (`<component>_`-prefixed signals plus the
    /// link-derived `_sent`/`_received`/`_consumed` joints).
    ///
    /// # Examples
    ///
    /// ```
    /// use polyverify::{
    ///     ProductComponent, ProductSystem, ProductVerifier, Property, VerifyOptions,
    /// };
    /// use signal_moc::builder::ProcessBuilder;
    /// use signal_moc::expr::Expr;
    /// use signal_moc::trace::Trace;
    /// use signal_moc::value::{Value, ValueType};
    ///
    /// // One scheduled thread echoing Dispatch as Complete.
    /// let mut b = ProcessBuilder::new("echo");
    /// b.input("Dispatch", ValueType::Boolean);
    /// b.output("Complete", ValueType::Boolean);
    /// b.define("Complete", Expr::var("Dispatch"));
    /// b.synchronize(&["Dispatch", "Complete"]);
    /// let process = b.build()?;
    /// let mut schedule = Trace::new();
    /// for t in 0..4usize {
    ///     schedule.set(t, "Dispatch", Value::Bool(t == 0));
    /// }
    ///
    /// let system = ProductSystem::new(
    ///     vec![ProductComponent {
    ///         name: "echo".into(),
    ///         process,
    ///         schedule,
    ///     }],
    ///     vec![],
    /// )?;
    /// let verifier = ProductVerifier::new(system, VerifyOptions::default())?;
    /// // A user property over the joint namespace: every dispatch is
    /// // completed on the spot. The periodic product closes, so the
    /// // verdict is a proof for unbounded time.
    /// let property =
    ///     Property::parse_ltl("always (echo_Dispatch implies echo_Complete within 0)")?;
    /// let outcome = verifier.verify(&[property])?;
    /// assert!(outcome.all_proved(), "{}", outcome.summary());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NoProperties`] for an empty property list and
    /// [`VerifyError::Evaluation`] when a component's scheduled step is not
    /// executable while [`Property::DeadlockFree`] is not among the checked
    /// properties.
    pub fn verify(&self, properties: &[Property]) -> Result<VerificationOutcome, VerifyError> {
        if properties.is_empty() {
            return Err(VerifyError::NoProperties);
        }
        if self.options.domain == Domain::Interval {
            let abstraction = self.analyze_abstraction(properties)?;
            if !abstraction.is_identity() {
                let outcome = self.verify_with(properties, Some(&abstraction))?;
                return self.reconcile(properties, outcome, &abstraction);
            }
        }
        self.verify_with(properties, None)
    }

    /// Per-component abstraction analysis, concatenated into the joint
    /// memory layout. A component's link-touched signals (emission markers,
    /// delivered inputs, freeze markers and frozen counts) join its
    /// observable set: link-derived joint signals are computed from them, so
    /// they must stay exact even when no property names them directly.
    fn analyze_abstraction(&self, properties: &[Property]) -> Result<SlotAbstraction, VerifyError> {
        let mut parts = Vec::with_capacity(self.system.components.len());
        for component in &self.system.components {
            let mut extra_reads: Vec<String> = Vec::new();
            for link in &self.system.links {
                if link.source == component.name {
                    extra_reads.push(link.source_signal.clone());
                }
                if link.target == component.name {
                    extra_reads.push(link.target_signal.clone());
                    extra_reads.extend(link.target_freeze.clone());
                    extra_reads.extend(link.target_count.clone());
                }
            }
            let evaluator = Evaluator::new(&component.process)?;
            parts.push(SlotAbstraction::analyze(
                &component.process,
                properties,
                &format!("{}_", component.name),
                &extra_reads,
                self.options.project_counters,
                self.options.widen_threshold,
                evaluator.memory_len(),
            ));
        }
        Ok(SlotAbstraction::concat(parts))
    }

    /// The strengthen-only gate of the abstract product run: every abstract
    /// counterexample must reproduce in a [`LockstepCoSim`] replay — an
    /// execution path independent of the abstraction — before the outcome
    /// is reported. A failed replay discards the abstraction and re-runs
    /// the fully concrete product exploration.
    fn reconcile(
        &self,
        properties: &[Property],
        mut outcome: VerificationOutcome,
        abstraction: &SlotAbstraction,
    ) -> Result<VerificationOutcome, VerifyError> {
        let mut reconcretized = 0usize;
        let mut confirmed = true;
        for (_, cex) in outcome.violations() {
            reconcretized += 1;
            match self.replay(cex) {
                Ok(report) if report.reproduced => {}
                _ => {
                    confirmed = false;
                    break;
                }
            }
        }
        if !confirmed {
            return self.verify_with(properties, None);
        }
        outcome.stats.projected_slots = abstraction.projected_slots();
        outcome.stats.reconcretized = reconcretized;
        let obs = &self.options.collector;
        if obs.is_enabled() {
            obs.counter("engine.projected_slots")
                .add(abstraction.projected_slots() as u64);
            obs.counter("engine.reconcretized")
                .add(reconcretized as u64);
        }
        Ok(outcome)
    }

    /// One product exploration pass: concrete when `abstraction` is `None`,
    /// abstract (normalising every joint state to its representative)
    /// otherwise.
    fn verify_with(
        &self,
        properties: &[Property],
        abstraction: Option<&SlotAbstraction>,
    ) -> Result<VerificationOutcome, VerifyError> {
        // One compiled monitor per trace property (built-in or user LTL);
        // their registers concatenate into the joint state's `monitors`.
        let (compiled, initial_monitors) = compile_properties(properties);
        let deadlock_idx = properties
            .iter()
            .position(|p| matches!(p, Property::DeadlockFree));

        let evaluators: Vec<Evaluator> = self
            .system
            .components
            .iter()
            .map(|c| Evaluator::new(&c.process))
            .collect::<Result<Vec<_>, _>>()?;
        let widths: Vec<usize> = evaluators.iter().map(Evaluator::memory_len).collect();
        let link_targets: Vec<usize> = self
            .system
            .links
            .iter()
            .map(|link| {
                self.system
                    .components
                    .iter()
                    .position(|c| c.name == link.target)
                    .expect("validated at construction")
            })
            .collect();
        let comp_prefixes: Vec<String> = self
            .system
            .components
            .iter()
            .map(|c| format!("{}_", c.name))
            .collect();
        let link_prefixes: Vec<String> = self
            .system
            .links
            .iter()
            .map(|l| format!("{}_", l.name))
            .collect();
        // Joint-namespace iteration order: entity prefixes are mutually
        // prefix-free (validated at construction), so each entity's signals
        // occupy a contiguous range of the name-sorted joint instant and
        // sorting the blocks by prefix reproduces the global order.
        let mut blocks: Vec<JointBlock> = (0..comp_prefixes.len())
            .map(JointBlock::Component)
            .chain((0..link_prefixes.len()).map(JointBlock::Link))
            .collect();
        blocks.sort_by(|a, b| {
            let prefix = |block: &JointBlock| match *block {
                JointBlock::Component(i) => comp_prefixes[i].as_str(),
                JointBlock::Link(k) => link_prefixes[k].as_str(),
            };
            prefix(a).cmp(prefix(b))
        });

        let monitor_count = initial_monitors.len();
        let mut initial = self.product_state(&evaluators, 0, &initial_monitors);
        if let Some(a) = abstraction {
            a.normalize(&mut initial.memory);
        }
        let expander = ProductExpander {
            verifier: self,
            evaluators,
            widths,
            link_targets,
            comp_prefixes,
            link_prefixes,
            blocks,
            compiled: &compiled,
            properties,
            deadlock_idx,
            monitor_count,
            memoize: self.options.pruning,
            abstraction,
        };
        // A dropped delivery makes the wired product an under-approximation
        // of the real periodic system: no closure can then count as a
        // proof, only as a bounded pass.
        engine::explore(
            &expander,
            &initial,
            &self.options,
            properties,
            self.system.dropped_deliveries > 0,
        )
    }

    /// The canonical product state: concatenated per-component operator
    /// memories, joint phase, monitor registers.
    fn product_state(&self, evaluators: &[Evaluator], phase: u32, monitors: &[u32]) -> State {
        let mut memory = Vec::new();
        for evaluator in evaluators {
            memory.extend(evaluator.memory());
        }
        State {
            memory,
            phase,
            monitors: monitors.to_vec(),
        }
    }

    /// Projects a joint counterexample onto one component: the
    /// `<component>_`-prefixed inputs of every step, with the prefix
    /// stripped — a per-thread input trace that replays in a plain
    /// [`polysim::Simulator`] over that component's process. Returns `None`
    /// for an unknown component name.
    pub fn project(&self, cex: &Counterexample, component: &str) -> Option<Trace> {
        if !self.system.components.iter().any(|c| c.name == component) {
            return None;
        }
        let prefix = format!("{component}_");
        Some(
            cex.inputs
                .iter()
                .map(|step| {
                    let mut projected = TraceStep::new();
                    for (signal, value) in step.iter() {
                        if let Some(local) = signal.strip_prefix(&prefix) {
                            projected.set(local, value.clone());
                        }
                    }
                    projected
                })
                .collect(),
        )
    }

    /// Replays a product counterexample in a fresh [`LockstepCoSim`] — an
    /// execution path independent of the checker — and reports whether the
    /// violation is reproduced at the same instant.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn replay(&self, cex: &Counterexample) -> Result<ReplayReport, VerifyError> {
        let mut cosim = LockstepCoSim::new(&self.system)?;
        let ticks = cex.violation_instant + 1;
        let (joint, failure) = cosim.run(ticks);
        match &cex.property {
            Property::DeadlockFree => match failure {
                Some(f) if f.tick == cex.violation_instant => Ok(ReplayReport {
                    reproduced: true,
                    detail: format!(
                        "lockstep co-simulation rejects the step of `{}` at tick {}: {}",
                        f.component, f.tick, f.detail
                    ),
                    trace: joint,
                }),
                Some(f) => Ok(ReplayReport {
                    reproduced: false,
                    detail: format!(
                        "co-simulation failed at tick {} (expected {}): {}",
                        f.tick, cex.violation_instant, f.detail
                    ),
                    trace: joint,
                }),
                None => Ok(ReplayReport {
                    reproduced: false,
                    detail: "every scheduled step executed during the lockstep replay".into(),
                    trace: joint,
                }),
            },
            property => {
                if let Some(f) = failure {
                    return Ok(ReplayReport {
                        reproduced: false,
                        detail: format!(
                            "lockstep replay stopped early at tick {} (`{}`): {}",
                            f.tick, f.component, f.detail
                        ),
                        trace: joint,
                    });
                }
                // One replay path for every trace property: re-run its
                // compiled monitor over the joint trace the co-simulation
                // produced, independently of the checker's exploration.
                let monitor = property
                    .monitor()
                    .expect("every non-deadlock property compiles to a monitor");
                let mut registers = monitor.initial();
                let mut violated_at = None;
                for (t, step) in joint.iter().enumerate() {
                    let observed = monitor.step(&mut registers, step);
                    if !observed.holds {
                        violated_at = Some((t, observed));
                        break;
                    }
                }
                Ok(match violated_at {
                    Some((t, observed)) => ReplayReport {
                        reproduced: t == cex.violation_instant,
                        detail: format!(
                            "{} at tick {t} of the lockstep replay",
                            property.violation_witness(&observed)
                        ),
                        trace: joint,
                    },
                    None => ReplayReport {
                        reproduced: false,
                        detail: format!(
                            "property `{}` not violated in the lockstep replay",
                            property.name()
                        ),
                        trace: joint,
                    },
                })
            }
        }
    }
}

/// One entity of the joint namespace, in name-sorted block order.
#[derive(Debug, Clone, Copy)]
enum JointBlock {
    /// Component index: its resolved signals appear as `<component>_<s>`.
    Component(usize),
    /// Link index: the derived `_consumed`/`_received`/`_sent` signals
    /// (listed here in their name-sorted suffix order).
    Link(usize),
}

/// Memo of one component's resolved instants, keyed by scheduler phase and
/// the component's encoded operator memory — which fully determine the
/// evaluator result, since the wired input of a phase is fixed.
#[derive(Default)]
struct ComponentMemo {
    index: HashMap<Box<[u8]>, u32>,
    steps: Vec<TraceStep>,
    memories: Vec<Vec<Value>>,
}

/// The [`Expander`] of a synchronous product: one deterministic edge per
/// state (the wired joint instant of its phase), resolved component by
/// component through the per-component memo.
struct ProductExpander<'a> {
    verifier: &'a ProductVerifier,
    /// Prototype evaluators, cloned into each worker context.
    evaluators: Vec<Evaluator>,
    /// Operator-memory width of each component inside the concatenated
    /// joint memory.
    widths: Vec<usize>,
    /// Component index of each link's target.
    link_targets: Vec<usize>,
    /// `<name>_` joint-namespace prefixes, per component and per link.
    comp_prefixes: Vec<String>,
    link_prefixes: Vec<String>,
    /// Entity blocks sorted by prefix: the global name-sorted iteration
    /// order of a joint instant.
    blocks: Vec<JointBlock>,
    compiled: &'a [CompiledProperty],
    properties: &'a [Property],
    deadlock_idx: Option<usize>,
    monitor_count: usize,
    memoize: bool,
    /// Interval-domain slot plans over the concatenated joint memory
    /// (`None` = concrete exploration).
    abstraction: Option<&'a SlotAbstraction>,
}

/// Per-worker scratch of the product expander.
struct ProductCtx {
    evaluators: Vec<Evaluator>,
    codec: KeyCodec,
    monitors: Vec<u32>,
    succ_monitors: Vec<u32>,
    memory: Vec<Value>,
    memo_key: Vec<u8>,
    memos: Vec<ComponentMemo>,
    /// Per-component memo-arena index of the current instant's resolution.
    resolved: Vec<u32>,
    /// Per-link `consumed` joint of the current instant (`None` when the
    /// link does not derive one).
    consumed: Vec<Option<bool>>,
}

static BOOL_TRUE: Value = Value::Bool(true);
static BOOL_FALSE: Value = Value::Bool(false);

fn bool_value(b: bool) -> &'static Value {
    if b {
        &BOOL_TRUE
    } else {
        &BOOL_FALSE
    }
}

/// Borrow-only [`InstantView`] of one joint instant: the per-component
/// resolved steps (through the memo arena) plus the link-derived joints,
/// visited in global name-sorted order without materialising the joint
/// `TraceStep`.
struct JointView<'a> {
    expander: &'a ProductExpander<'a>,
    memos: &'a [ComponentMemo],
    resolved: &'a [u32],
    consumed: &'a [Option<bool>],
    phase: usize,
}

impl JointView<'_> {
    fn component_step(&self, component: usize) -> &TraceStep {
        &self.memos[component].steps[self.resolved[component] as usize]
    }
}

impl InstantView for JointView<'_> {
    fn value_of(&self, name: &str) -> Option<&Value> {
        // At most one prefix matches: entity names are validated to be
        // prefix-unambiguous at product construction.
        for (i, prefix) in self.expander.comp_prefixes.iter().enumerate() {
            if let Some(local) = name.strip_prefix(prefix.as_str()) {
                return self.component_step(i).get(local);
            }
        }
        let system = &self.expander.verifier.system;
        for (k, prefix) in self.expander.link_prefixes.iter().enumerate() {
            if let Some(kind) = name.strip_prefix(prefix.as_str()) {
                let activity = &system.activity[k];
                return match kind {
                    "sent" => Some(bool_value(activity.sent[self.phase])),
                    "received" => Some(bool_value(activity.received[self.phase])),
                    "consumed" => self.consumed[k].map(bool_value),
                    _ => None,
                };
            }
        }
        None
    }

    fn first_present_matching(
        &self,
        accept: &mut dyn FnMut(&str, &Value) -> bool,
    ) -> Option<String> {
        let system = &self.expander.verifier.system;
        let mut joint = String::new();
        for block in &self.expander.blocks {
            match *block {
                JointBlock::Component(i) => {
                    let prefix = &self.expander.comp_prefixes[i];
                    for (local, value) in self.component_step(i).iter() {
                        joint.clear();
                        joint.push_str(prefix);
                        joint.push_str(local);
                        if accept(&joint, value) {
                            return Some(joint);
                        }
                    }
                }
                JointBlock::Link(k) => {
                    let activity = &system.activity[k];
                    let suffixes = [
                        self.consumed[k].map(|b| ("consumed", bool_value(b))),
                        Some(("received", bool_value(activity.received[self.phase]))),
                        Some(("sent", bool_value(activity.sent[self.phase]))),
                    ];
                    for (suffix, value) in suffixes.into_iter().flatten() {
                        joint.clear();
                        joint.push_str(&self.expander.link_prefixes[k]);
                        joint.push_str(suffix);
                        if accept(&joint, value) {
                            return Some(joint);
                        }
                    }
                }
            }
        }
        None
    }
}

impl Expander for ProductExpander<'_> {
    type Ctx = ProductCtx;

    fn new_ctx(&self) -> ProductCtx {
        ProductCtx {
            evaluators: self.evaluators.clone(),
            codec: KeyCodec::new(),
            monitors: Vec::new(),
            succ_monitors: Vec::new(),
            memory: Vec::new(),
            memo_key: Vec::new(),
            memos: self
                .evaluators
                .iter()
                .map(|_| ComponentMemo::default())
                .collect(),
            resolved: Vec::new(),
            consumed: Vec::new(),
        }
    }

    fn expand(
        &self,
        ctx: &mut ProductCtx,
        key: &[u8],
        depth: usize,
        sink: &mut Sink<'_>,
    ) -> Result<(), VerifyError> {
        let phase_bits = ctx
            .codec
            .seed_key(key, self.monitor_count, &mut ctx.monitors);
        let phase = phase_bits as usize;
        let system = &self.verifier.system;

        // Resolve every component at this phase through its memo; without
        // memoization the arenas are drained so they only ever hold the
        // current instant.
        ctx.resolved.clear();
        if !self.memoize {
            for memo in &mut ctx.memos {
                memo.steps.clear();
                memo.memories.clear();
            }
        }
        let empty = TraceStep::new();
        let mut offset = 0usize;
        let mut hits = 0usize;
        for i in 0..self.widths.len() {
            let width = self.widths[i];
            let parent = &ctx.codec.parent_memory()[offset..offset + width];
            offset += width;
            ctx.memo_key.clear();
            ctx.memo_key.extend_from_slice(&phase_bits.to_le_bytes());
            for value in parent {
                state::encode_value(value, &mut ctx.memo_key);
            }
            if self.memoize {
                if let Some(&at) = ctx.memos[i].index.get(ctx.memo_key.as_slice()) {
                    ctx.resolved.push(at);
                    hits += 1;
                    continue;
                }
            }
            let evaluator = &mut ctx.evaluators[i];
            evaluator.restore_memory(parent)?;
            let input = system.wired[i].step(phase).unwrap_or(&empty);
            match evaluator.step(depth, input) {
                Ok(step) => {
                    let memo = &mut ctx.memos[i];
                    let at = memo.steps.len() as u32;
                    memo.steps.push(step);
                    memo.memories.push(evaluator.memory());
                    if self.memoize {
                        memo.index.insert(ctx.memo_key.as_slice().into(), at);
                    }
                    ctx.resolved.push(at);
                }
                Err(e) => {
                    // The joint execution cannot continue past a
                    // non-executable step: the path ends here with no
                    // successor, which exhausts the deterministic product.
                    // The failing instant contributes no transitions.
                    sink.infeasible();
                    let witness = format!(
                        "component `{}` scheduled step not executable: {e}",
                        system.components[i].name
                    );
                    return match self.deadlock_idx {
                        Some(idx) => {
                            sink.violation(idx, Some(0), witness);
                            Ok(())
                        }
                        None => Err(VerifyError::Evaluation {
                            instant: depth,
                            detail: witness,
                        }),
                    };
                }
            }
        }
        for _ in 0..self.widths.len() {
            sink.transition();
        }
        sink.memo_hit(hits);
        sink.memo_miss(self.widths.len() - hits);

        // Link `consumed` joints of this instant: the target's Input Time
        // fired with a non-empty frozen FIFO. Only derived when the link
        // declares both signals.
        ctx.consumed.clear();
        for (k, link) in system.links.iter().enumerate() {
            let flag = match (&link.target_freeze, &link.target_count) {
                (Some(freeze), Some(count)) => {
                    let step = &ctx.memos[self.link_targets[k]].steps
                        [ctx.resolved[self.link_targets[k]] as usize];
                    let froze = step.get(freeze).map(Value::as_bool).unwrap_or(false);
                    let nonempty = step.get(count).map(Value::as_bool).unwrap_or(false);
                    Some(froze && nonempty)
                }
                _ => None,
            };
            ctx.consumed.push(flag);
        }

        // Monitor steps on the borrowed joint view (a violating monitor
        // keeps running, so every property gets its earliest
        // counterexample).
        let view = JointView {
            expander: self,
            memos: &ctx.memos,
            resolved: &ctx.resolved,
            consumed: &ctx.consumed,
            phase,
        };
        ctx.succ_monitors.clear();
        ctx.succ_monitors.extend_from_slice(&ctx.monitors);
        for property in self.compiled {
            let observed = property.step(&mut ctx.succ_monitors, &view);
            if !observed.holds {
                sink.violation(
                    property.index,
                    Some(0),
                    self.properties[property.index].violation_witness(&observed),
                );
            }
        }

        ctx.memory.clear();
        for (i, &at) in ctx.resolved.iter().enumerate() {
            ctx.memory
                .extend_from_slice(&ctx.memos[i].memories[at as usize]);
        }
        if let Some(abstraction) = self.abstraction {
            let widened = abstraction.normalize(&mut ctx.memory);
            if widened > 0 {
                sink.widened(widened);
            }
        }
        let next_phase = ((phase + 1) % system.horizon) as u32;
        let (hash, bytes) = ctx
            .codec
            .successor(&ctx.memory, next_phase, &ctx.succ_monitors);
        sink.successor(hash, bytes, 0);
        Ok(())
    }

    fn edge_step(&self, prev_key: &[u8], _edge: u32) -> TraceStep {
        let phase = u32::from_le_bytes(prev_key[0..4].try_into().expect("phase bytes")) as usize;
        let system = &self.verifier.system;
        system.joint_input(phase % system.horizon)
    }

    fn monitored_properties(&self) -> Vec<String> {
        self.compiled
            .iter()
            .map(|p| self.properties[p.index].name())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Verdict;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::expr::Expr;
    use signal_moc::value::ValueType;

    /// A sender whose schedule emits on `out_output_time`, and a receiver
    /// whose `in_in` input feeds a latch raising `Alarm` one tick later.
    fn sender() -> Process {
        let mut b = ProcessBuilder::new("tx");
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.output("Complete", ValueType::Boolean);
        b.define("Complete", Expr::var("Dispatch"));
        b.synchronize(&["Dispatch", "out_output_time", "Complete"]);
        b.build().unwrap()
    }

    fn receiver() -> Process {
        let mut b = ProcessBuilder::new("rx");
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("latch", ValueType::Boolean);
        b.define(
            "latch",
            Expr::or(
                Expr::delay(Expr::var("latch"), Value::Bool(false)),
                Expr::var("in_in"),
            ),
        );
        b.define("Alarm", Expr::delay(Expr::var("latch"), Value::Bool(false)));
        b.synchronize(&["in_in", "latch", "Alarm"]);
        b.build().unwrap()
    }

    fn schedules(emit_at: usize, horizon: usize) -> (Trace, Trace) {
        let mut tx = Trace::new();
        let mut rx = Trace::new();
        for t in 0..horizon {
            tx.set(t, "Dispatch", Value::Bool(t == 0));
            tx.set(t, "out_output_time", Value::Bool(t == emit_at));
            rx.set(t, "in_in", Value::Bool(false));
        }
        (tx, rx)
    }

    fn link() -> PortLink {
        PortLink {
            name: "c1".into(),
            source: "tx".into(),
            source_signal: "out_output_time".into(),
            target: "rx".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 0,
        }
    }

    fn system(emit_at: usize, horizon: usize) -> ProductSystem {
        let (tx, rx) = schedules(emit_at, horizon);
        ProductSystem::new(
            vec![
                ProductComponent {
                    name: "tx".into(),
                    process: sender(),
                    schedule: tx,
                },
                ProductComponent {
                    name: "rx".into(),
                    process: receiver(),
                    schedule: rx,
                },
            ],
            vec![link()],
        )
        .unwrap()
    }

    #[test]
    fn wiring_fixes_the_receiver_input_from_the_sender_emission() {
        let system = system(1, 4);
        let wired = system.wired_trace("rx").unwrap();
        let arrivals: Vec<bool> = (0..4)
            .map(|t| wired.value(t, "in_in").unwrap().as_bool())
            .collect();
        assert_eq!(arrivals, vec![false, true, false, false]);
        // The sender's own trace is untouched.
        assert_eq!(
            system.wired_trace("tx").unwrap(),
            &system.components()[0].schedule
        );
    }

    #[test]
    fn cross_thread_alarm_found_only_in_the_product() {
        let system = system(1, 4);
        let verifier = ProductVerifier::new(system, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&[Property::NeverRaised("*Alarm*".into())])
            .unwrap();
        let (_, cex) = outcome.violations().next().expect("alarm expected");
        // Emission at 1 delivered at 1, latched, alarm one tick later.
        assert_eq!(cex.violation_instant, 2);
        let replay = verifier.replay(cex).unwrap();
        assert!(replay.reproduced, "{}", replay.detail);

        // Per-thread scope misses it: the receiver alone never sees the
        // event (its scheduled `in_in` stays false).
        let per_thread = crate::Verifier::new(&receiver(), VerifyOptions::default())
            .unwrap()
            .verify(
                &crate::InputSpace::Scheduled(schedules(1, 4).1),
                &[Property::NeverRaised("*Alarm*".into())],
            )
            .unwrap();
        assert!(per_thread.is_violation_free(), "{}", per_thread.summary());
    }

    #[test]
    fn projection_replays_in_a_plain_simulator() {
        let system = system(1, 4);
        let verifier = ProductVerifier::new(system, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&[Property::NeverRaised("*Alarm*".into())])
            .unwrap();
        let (_, cex) = outcome.violations().next().unwrap();
        let rx_inputs = verifier.project(cex, "rx").expect("rx is a component");
        assert_eq!(rx_inputs.len(), cex.inputs.len());
        assert!(rx_inputs.value(1, "in_in").unwrap().as_bool());
        let mut simulator = Simulator::new(&receiver()).unwrap();
        let out = simulator.run(&rx_inputs).unwrap();
        assert!(out.value(2, "Alarm").unwrap().as_bool());
        assert!(verifier.project(cex, "nope").is_none());
    }

    #[test]
    fn latency_past_the_horizon_drops_the_delivery_and_downgrades_proofs() {
        let (tx, rx) = schedules(3, 4);
        let system = ProductSystem::new(
            vec![
                ProductComponent {
                    name: "tx".into(),
                    process: sender(),
                    schedule: tx,
                },
                ProductComponent {
                    name: "rx".into(),
                    process: receiver(),
                    schedule: rx,
                },
            ],
            vec![link().with_latency(2)],
        )
        .unwrap();
        // The delivery would land at tick 5 > horizon: dropped from the
        // wiring (the real periodic system would deliver it at phase 1 of
        // the next period), so even though the wired product closes with no
        // alarm, the verdict must stay bounded — never a proof.
        assert_eq!(system.dropped_deliveries(), 1);
        let verifier = ProductVerifier::new(system, VerifyOptions::default()).unwrap();
        let outcome = verifier
            .verify(&[Property::NeverRaised("*Alarm*".into())])
            .unwrap();
        assert!(outcome.is_violation_free(), "{}", outcome.summary());
        assert!(!outcome.all_proved(), "{}", outcome.summary());
        assert!(outcome.stats.truncated);
        assert!(matches!(
            outcome.verdicts[0].verdict,
            Verdict::PassedBounded { .. }
        ));
    }

    #[test]
    fn end_to_end_response_monitors_the_link_signals() {
        let mut l = link();
        l.target_freeze = Some("in_in".into());
        l.target_count = Some("latch".into());
        let (tx, rx) = schedules(1, 6);
        let system = ProductSystem::new(
            vec![
                ProductComponent {
                    name: "tx".into(),
                    process: sender(),
                    schedule: tx,
                },
                ProductComponent {
                    name: "rx".into(),
                    process: receiver(),
                    schedule: rx,
                },
            ],
            vec![l],
        )
        .unwrap();
        let verifier = ProductVerifier::new(system, VerifyOptions::default()).unwrap();
        // Same-tick consumption: holds (and the product closes).
        let ok = verifier
            .verify(&[Property::EndToEndResponse {
                from: "c1_sent".into(),
                to: "c1_consumed".into(),
                bound: 1,
            }])
            .unwrap();
        assert!(ok.is_violation_free(), "{}", ok.summary());
    }

    #[test]
    fn invalid_products_are_rejected_with_details() {
        let (tx, rx) = schedules(1, 4);
        let component = |name: &str, process: Process, schedule: Trace| ProductComponent {
            name: name.into(),
            process,
            schedule,
        };
        assert!(matches!(
            ProductSystem::new(vec![], vec![]),
            Err(VerifyError::InvalidProduct(_))
        ));
        // Mismatched horizons.
        let err = ProductSystem::new(
            vec![
                component("tx", sender(), tx.clone()),
                component("rx", receiver(), schedules(1, 5).1),
            ],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        // Unknown link endpoint.
        let mut bad = link();
        bad.target = "ghost".into();
        let err = ProductSystem::new(
            vec![
                component("tx", sender(), tx.clone()),
                component("rx", receiver(), rx.clone()),
            ],
            vec![bad],
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
        // Link shadowing a component name.
        let mut shadow = link();
        shadow.name = "rx".into();
        let err = ProductSystem::new(
            vec![
                component("tx", sender(), tx.clone()),
                component("rx", receiver(), rx.clone()),
            ],
            vec![shadow],
        )
        .unwrap_err();
        assert!(err.to_string().contains("shadows"), "{err}");
        // Unknown target input.
        let mut missing = link();
        missing.target_signal = "nonexistent".into();
        let err = ProductSystem::new(
            vec![
                component("tx", sender(), tx),
                component("rx", receiver(), rx),
            ],
            vec![missing],
        )
        .unwrap_err();
        assert!(err.to_string().contains("nonexistent"), "{err}");
    }

    #[test]
    fn worker_count_does_not_change_product_outcomes() {
        let reference =
            ProductVerifier::new(system(1, 4), VerifyOptions::default().with_workers(1))
                .unwrap()
                .verify(&[Property::NeverRaised("*Alarm*".into())])
                .unwrap();
        for workers in [2usize, 8] {
            let outcome =
                ProductVerifier::new(system(1, 4), VerifyOptions::default().with_workers(workers))
                    .unwrap()
                    .verify(&[Property::NeverRaised("*Alarm*".into())])
                    .unwrap();
            assert_eq!(reference.verdicts, outcome.verdicts, "workers={workers}");
            assert_eq!(reference.stats.states, outcome.stats.states);
            assert_eq!(reference.stats.depth, outcome.stats.depth);
        }
    }

    #[test]
    fn depth_bound_yields_passed_bounded_never_proved() {
        // An unbounded per-tick counter keeps the product from closing; the
        // depth bound must downgrade the verdict to PassedBounded.
        let mut b = ProcessBuilder::new("counter");
        b.input("Dispatch", ValueType::Boolean);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["Dispatch", "count"]);
        let process = b.build().unwrap();
        let mut schedule = Trace::new();
        for t in 0..2usize {
            schedule.set(t, "Dispatch", Value::Bool(t == 0));
        }
        let system = ProductSystem::new(
            vec![ProductComponent {
                name: "c".into(),
                process,
                schedule,
            }],
            vec![],
        )
        .unwrap();
        let verifier =
            ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(6)).unwrap();
        let outcome = verifier
            .verify(&[Property::NeverRaised("*Alarm*".into())])
            .unwrap();
        assert!(outcome.stats.truncated);
        assert_eq!(
            outcome.verdicts[0].verdict,
            Verdict::PassedBounded { depth: 6 }
        );
        assert!(!outcome.all_proved());
        assert!(
            !outcome.verdicts[0].verdict.summary().contains("proved"),
            "{}",
            outcome.verdicts[0].verdict.summary()
        );
    }

    #[test]
    fn empty_properties_are_rejected() {
        let verifier = ProductVerifier::new(system(1, 4), VerifyOptions::default()).unwrap();
        assert!(matches!(
            verifier.verify(&[]),
            Err(VerifyError::NoProperties)
        ));
    }
}
