//! Safety properties checked during state-space exploration.

use serde::{Deserialize, Serialize};
use signal_moc::trace::TraceStep;

use crate::state::MONITOR_IDLE;

/// A safety property over the executions of a flat SIGNAL process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Property {
    /// No signal whose name matches the pattern is ever present with a
    /// `true`-ish value. Patterns support leading/trailing `*` wildcards:
    /// `"*Alarm*"` (contains), `"Alarm*"` (prefix), `"*Alarm"` (suffix),
    /// `"Alarm"` (exact).
    NeverRaised(String),
    /// Every reachable state has at least one executable successor. Under a
    /// scheduled input trace this means every scheduled step is executable;
    /// under free inputs it means some non-silent input valuation is
    /// feasible.
    DeadlockFree,
    /// Whenever `trigger` is present and true, `response` must be present
    /// and true within `bound` instants (a same-instant response counts).
    BoundedResponse {
        /// Name of the triggering signal.
        trigger: String,
        /// Name of the required response signal.
        response: String,
        /// Maximum number of instants between trigger and response.
        bound: u32,
    },
    /// Cross-thread latency: whenever the joint signal `from` is true (for a
    /// product this is typically a sender-side emission such as a link's
    /// `<link>_sent` signal), the joint signal `to` (typically the matching
    /// `<link>_consumed` signal, true when the receiver freezes at least one
    /// delivered event) must be true within `bound` instants. Over a
    /// [`crate::ProductVerifier`] this checks end-to-end response across an
    /// event-port connection; over a single thread the referenced joint
    /// signals do not exist, so the property is vacuously satisfied — which
    /// is exactly why connection faults are invisible to per-thread scope.
    EndToEndResponse {
        /// Name of the (joint) signal whose truth starts the deadline.
        from: String,
        /// Name of the (joint) signal that must answer within the bound.
        to: String,
        /// Maximum number of instants between `from` and `to`.
        bound: u32,
    },
}

impl Property {
    /// A short human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Property::NeverRaised(pattern) => format!("never-raised({pattern})"),
            Property::DeadlockFree => "deadlock-free".to_string(),
            Property::BoundedResponse {
                trigger,
                response,
                bound,
            } => format!("bounded-response({trigger} -> {response} within {bound})"),
            Property::EndToEndResponse { from, to, bound } => {
                format!("end-to-end-response({from} -> {to} within {bound})")
            }
        }
    }

    /// Returns `true` for the response properties ([`Property::BoundedResponse`]
    /// and [`Property::EndToEndResponse`]), which carry a monitor register in
    /// the explored state.
    pub fn needs_monitor(&self) -> bool {
        self.monitor_spec().is_some()
    }

    /// The `(trigger, response, bound)` triple of a response property
    /// (`None` for the stateless properties). Both response flavours share
    /// the same monitor mechanics; they differ only in the namespace the
    /// signals live in (one thread vs the joint product).
    pub fn monitor_spec(&self) -> Option<(&str, &str, u32)> {
        match self {
            Property::BoundedResponse {
                trigger,
                response,
                bound,
            } => Some((trigger, response, *bound)),
            Property::EndToEndResponse { from, to, bound } => Some((from, to, *bound)),
            Property::NeverRaised(_) | Property::DeadlockFree => None,
        }
    }
}

/// Matches a signal name against a `NeverRaised` pattern.
pub(crate) fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_prefix('*') {
        Some(rest) => match rest.strip_suffix('*') {
            Some(middle) => middle.is_empty() || name.contains(middle),
            None => name.ends_with(rest),
        },
        None => match pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == pattern,
        },
    }
}

/// Returns the name of a signal that is present with a `true`-ish value and
/// matches `pattern`, if any.
pub(crate) fn raised_signal(pattern: &str, step: &TraceStep) -> Option<String> {
    step.iter()
        .find(|(name, value)| pattern_matches(pattern, name) && value.as_bool())
        .map(|(name, _)| name.clone())
}

fn signal_true(step: &TraceStep, name: &str) -> bool {
    step.get(name).map(|v| v.as_bool()).unwrap_or(false)
}

/// Advances the monitor register of a [`Property::BoundedResponse`] over one
/// resolved step. Returns the new register, or `Err(())` when the response
/// deadline expired at this instant.
pub(crate) fn monitor_step(
    trigger: &str,
    response: &str,
    bound: u32,
    register: u32,
    step: &TraceStep,
) -> Result<u32, ()> {
    let response_now = signal_true(step, response);
    let mut register = register;
    if register != MONITOR_IDLE {
        if response_now {
            register = MONITOR_IDLE;
        } else {
            // Armed registers are always in 1..=bound: hitting 0 here means
            // the response window just closed without a response.
            register -= 1;
            if register == 0 {
                return Err(());
            }
        }
    }
    if signal_true(step, trigger) && !response_now && register == MONITOR_IDLE {
        if bound == 0 {
            return Err(());
        }
        register = bound;
    }
    Ok(register)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::value::Value;

    #[test]
    fn patterns_match_like_globs() {
        assert!(pattern_matches("*Alarm*", "thProducer_Alarm"));
        assert!(pattern_matches("*Alarm*", "Alarm"));
        assert!(!pattern_matches("*Alarm*", "Resume"));
        assert!(pattern_matches("Alarm*", "Alarm_out"));
        assert!(!pattern_matches("Alarm*", "MyAlarm"));
        assert!(pattern_matches("*Alarm", "MyAlarm"));
        assert!(!pattern_matches("*Alarm", "Alarm_out"));
        assert!(pattern_matches("Alarm", "Alarm"));
        assert!(!pattern_matches("Alarm", "Alarms"));
        assert!(pattern_matches("**", "anything"));
    }

    #[test]
    fn raised_signal_requires_truth() {
        let mut step = TraceStep::new();
        step.set("Alarm", Value::Bool(false));
        assert_eq!(raised_signal("*Alarm*", &step), None);
        step.set("th_Alarm", Value::Bool(true));
        assert_eq!(raised_signal("*Alarm*", &step), Some("th_Alarm".into()));
    }

    #[test]
    fn monitor_arms_counts_down_and_expires() {
        let trigger = "t";
        let response = "r";
        let mut fire = TraceStep::new();
        fire.set(trigger, Value::Bool(true));
        let quiet = TraceStep::new();
        let mut respond = TraceStep::new();
        respond.set(response, Value::Bool(true));

        // bound 2: trigger, one quiet instant, then response -> satisfied.
        let m = monitor_step(trigger, response, 2, MONITOR_IDLE, &fire).unwrap();
        assert_eq!(m, 2);
        let m = monitor_step(trigger, response, 2, m, &quiet).unwrap();
        assert_eq!(m, 1);
        let m = monitor_step(trigger, response, 2, m, &respond).unwrap();
        assert_eq!(m, MONITOR_IDLE);

        // bound 1: trigger then quiet instant -> deadline expires.
        let m = monitor_step(trigger, response, 1, MONITOR_IDLE, &fire).unwrap();
        assert_eq!(m, 1);
        assert!(monitor_step(trigger, response, 1, m, &quiet).is_err());
    }

    #[test]
    fn same_instant_response_satisfies_and_bound_zero_requires_it() {
        let mut both = TraceStep::new();
        both.set("t", Value::Bool(true));
        both.set("r", Value::Bool(true));
        assert_eq!(
            monitor_step("t", "r", 0, MONITOR_IDLE, &both).unwrap(),
            MONITOR_IDLE
        );
        let mut fire = TraceStep::new();
        fire.set("t", Value::Bool(true));
        assert!(monitor_step("t", "r", 0, MONITOR_IDLE, &fire).is_err());
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            Property::NeverRaised("*Alarm*".into()).name(),
            "never-raised(*Alarm*)"
        );
        assert_eq!(Property::DeadlockFree.name(), "deadlock-free");
        let br = Property::BoundedResponse {
            trigger: "Dispatch".into(),
            response: "Complete".into(),
            bound: 4,
        };
        assert!(br.name().contains("within 4"));
        assert!(br.needs_monitor());
        assert!(!Property::DeadlockFree.needs_monitor());
        let e2e = Property::EndToEndResponse {
            from: "cLink_sent".into(),
            to: "cLink_consumed".into(),
            bound: 8,
        };
        assert_eq!(
            e2e.name(),
            "end-to-end-response(cLink_sent -> cLink_consumed within 8)"
        );
        assert!(e2e.needs_monitor());
        assert_eq!(
            e2e.monitor_spec(),
            Some(("cLink_sent", "cLink_consumed", 8))
        );
        assert_eq!(Property::NeverRaised("*".into()).monitor_spec(), None);
    }
}
