//! Safety properties checked during state-space exploration.
//!
//! Every property except [`Property::DeadlockFree`] denotes a past-time
//! LTL invariant over the resolved trace: [`Property::ltl`] exposes the
//! formula and [`Property::monitor`] compiles it into the monitor
//! automaton the explorers step ([`crate::monitor::LtlMonitor`]). The
//! legacy shapes ([`Property::NeverRaised`],
//! [`Property::BoundedResponse`], [`Property::EndToEndResponse`]) are
//! canonical desugarings into that one monitor path; arbitrary
//! user-written formulas enter through [`Property::Ltl`]. Deadlock freedom
//! is the one property that is *not* a trace formula — it asks for the
//! existence of a feasible successor — and keeps its dedicated check in
//! the explorers.

use serde::{Deserialize, Serialize};
use signal_moc::InstantView;

use crate::ltl::{Formula, LtlProperty};
use crate::monitor::{LtlMonitor, MonitorStep};

/// A safety property over the executions of a flat SIGNAL process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Property {
    /// No signal whose name matches the pattern is ever present with a
    /// `true`-ish value. Patterns support leading/trailing `*` wildcards:
    /// `"*Alarm*"` (contains), `"Alarm*"` (prefix), `"*Alarm"` (suffix),
    /// `"Alarm"` (exact). Desugars to the LTL property
    /// `never raised(<pattern>)`.
    NeverRaised(String),
    /// Every reachable state has at least one executable successor. Under a
    /// scheduled input trace this means every scheduled step is executable;
    /// under free inputs it means some non-silent input valuation is
    /// feasible. Not expressible as a trace formula (it quantifies over
    /// successors, not over the observed trace), so it has no LTL
    /// desugaring.
    DeadlockFree,
    /// Whenever `trigger` is present and true, `response` must be present
    /// and true within `bound` instants (a same-instant response counts).
    /// Desugars to the LTL property
    /// `always (<trigger> implies <response> within <bound>)`.
    BoundedResponse {
        /// Name of the triggering signal.
        trigger: String,
        /// Name of the required response signal.
        response: String,
        /// Maximum number of instants between trigger and response.
        bound: u32,
    },
    /// Cross-thread latency: whenever the joint signal `from` is true (for a
    /// product this is typically a sender-side emission such as a link's
    /// `<link>_sent` signal), the joint signal `to` (typically the matching
    /// `<link>_consumed` signal, true when the receiver freezes at least one
    /// delivered event) must be true within `bound` instants. Over a
    /// [`crate::ProductVerifier`] this checks end-to-end response across an
    /// event-port connection; over a single thread the referenced joint
    /// signals do not exist, so the property is vacuously satisfied — which
    /// is exactly why connection faults are invisible to per-thread scope.
    /// Desugars to `always (<from> implies <to> within <bound>)`.
    EndToEndResponse {
        /// Name of the (joint) signal whose truth starts the deadline.
        from: String,
        /// Name of the (joint) signal that must answer within the bound.
        to: String,
        /// Maximum number of instants between `from` and `to`.
        bound: u32,
    },
    /// A user-written past-time LTL property (see [`crate::ltl`] and the
    /// `docs/PROPERTIES.md` reference manual), e.g. parsed from
    /// `polychrony verify --property '<expr>'`.
    Ltl(LtlProperty),
}

impl Property {
    /// Parses a property from the past-time LTL surface syntax.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::ltl::ParseError`] with the offending span.
    pub fn parse_ltl(expr: &str) -> Result<Self, crate::ltl::ParseError> {
        LtlProperty::parse(expr).map(Property::Ltl)
    }

    /// A short human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Property::NeverRaised(pattern) => format!("never-raised({pattern})"),
            Property::DeadlockFree => "deadlock-free".to_string(),
            Property::BoundedResponse {
                trigger,
                response,
                bound,
            } => format!("bounded-response({trigger} -> {response} within {bound})"),
            Property::EndToEndResponse { from, to, bound } => {
                format!("end-to-end-response({from} -> {to} within {bound})")
            }
            Property::Ltl(property) => property.expr().to_string(),
        }
    }

    /// The past-time LTL desugaring of this property — the one monitor path
    /// every trace property compiles through. `None` only for
    /// [`Property::DeadlockFree`], which is a successor-existence property,
    /// not a trace formula.
    pub fn ltl(&self) -> Option<LtlProperty> {
        match self {
            Property::NeverRaised(pattern) => {
                Some(LtlProperty::never(Formula::raised(pattern.clone())))
            }
            Property::DeadlockFree => None,
            Property::BoundedResponse {
                trigger,
                response,
                bound,
            } => Some(LtlProperty::always(Formula::within(
                Formula::signal(trigger.clone()),
                Formula::signal(response.clone()),
                *bound,
            ))),
            Property::EndToEndResponse { from, to, bound } => {
                Some(LtlProperty::always(Formula::within(
                    Formula::signal(from.clone()),
                    Formula::signal(to.clone()),
                    *bound,
                )))
            }
            Property::Ltl(property) => Some(property.clone()),
        }
    }

    /// Compiles the property's invariant into the monitor automaton stepped
    /// by the explorers (`None` for [`Property::DeadlockFree`]).
    pub fn monitor(&self) -> Option<LtlMonitor> {
        self.ltl()
            .map(|property| LtlMonitor::new(property.invariant().clone()))
    }

    /// Returns `true` for the response properties ([`Property::BoundedResponse`]
    /// and [`Property::EndToEndResponse`]), which carry a monitor register in
    /// the explored state. Legacy helper kept for the built-in shapes; an
    /// arbitrary [`Property::Ltl`] carries one register per temporal
    /// operator (see [`Property::monitor`]).
    pub fn needs_monitor(&self) -> bool {
        self.monitor_spec().is_some()
    }

    /// The `(trigger, response, bound)` triple of a response property
    /// (`None` for the other shapes). Both response flavours share the same
    /// deadline automaton; they differ only in the namespace the signals
    /// live in (one thread vs the joint product).
    pub fn monitor_spec(&self) -> Option<(&str, &str, u32)> {
        match self {
            Property::BoundedResponse {
                trigger,
                response,
                bound,
            } => Some((trigger, response, *bound)),
            Property::EndToEndResponse { from, to, bound } => Some((from, to, *bound)),
            Property::NeverRaised(_) | Property::DeadlockFree | Property::Ltl(_) => None,
        }
    }

    /// The witness text of a violating monitor step, matching the
    /// property's vocabulary (the raised signal for alarm properties, the
    /// expired deadline for response properties).
    pub(crate) fn violation_witness(&self, observed: &MonitorStep) -> String {
        match self {
            Property::NeverRaised(_) => match &observed.raised {
                Some(signal) => format!("signal `{signal}` raised"),
                None => "signal raised".to_string(),
            },
            Property::BoundedResponse { .. } | Property::EndToEndResponse { .. } => {
                "response deadline expired".to_string()
            }
            Property::Ltl(property) => {
                if observed.expired {
                    "response deadline expired".to_string()
                } else if let (Formula::Not(_), Some(signal)) =
                    (property.invariant(), &observed.raised)
                {
                    format!("signal `{signal}` raised")
                } else {
                    "formula false at this instant".to_string()
                }
            }
            Property::DeadlockFree => unreachable!("deadlock freedom has no monitor"),
        }
    }
}

/// Matches a signal name against a `NeverRaised` pattern.
pub(crate) fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_prefix('*') {
        Some(rest) => match rest.strip_suffix('*') {
            Some(middle) => middle.is_empty() || name.contains(middle),
            None => name.ends_with(rest),
        },
        None => match pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == pattern,
        },
    }
}

/// Returns the name of a signal that is present with a `true`-ish value and
/// matches `pattern`, if any.
pub(crate) fn raised_signal<V: InstantView + ?Sized>(pattern: &str, step: &V) -> Option<String> {
    step.first_present_matching(&mut |name, value| {
        pattern_matches(pattern, name) && value.as_bool()
    })
}

/// Returns `true` when `name` is present with a `true`-ish value.
pub(crate) fn signal_true<V: InstantView + ?Sized>(step: &V, name: &str) -> bool {
    step.value_of(name).map(|v| v.as_bool()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::trace::TraceStep;
    use signal_moc::value::Value;

    #[test]
    fn patterns_match_like_globs() {
        assert!(pattern_matches("*Alarm*", "thProducer_Alarm"));
        assert!(pattern_matches("*Alarm*", "Alarm"));
        assert!(!pattern_matches("*Alarm*", "Resume"));
        assert!(pattern_matches("Alarm*", "Alarm_out"));
        assert!(!pattern_matches("Alarm*", "MyAlarm"));
        assert!(pattern_matches("*Alarm", "MyAlarm"));
        assert!(!pattern_matches("*Alarm", "Alarm_out"));
        assert!(pattern_matches("Alarm", "Alarm"));
        assert!(!pattern_matches("Alarm", "Alarms"));
        assert!(pattern_matches("**", "anything"));
    }

    #[test]
    fn raised_signal_requires_truth() {
        let mut step = TraceStep::new();
        step.set("Alarm", Value::Bool(false));
        assert_eq!(raised_signal("*Alarm*", &step), None);
        step.set("th_Alarm", Value::Bool(true));
        assert_eq!(raised_signal("*Alarm*", &step), Some("th_Alarm".into()));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            Property::NeverRaised("*Alarm*".into()).name(),
            "never-raised(*Alarm*)"
        );
        assert_eq!(Property::DeadlockFree.name(), "deadlock-free");
        let br = Property::BoundedResponse {
            trigger: "Dispatch".into(),
            response: "Complete".into(),
            bound: 4,
        };
        assert!(br.name().contains("within 4"));
        assert!(br.needs_monitor());
        assert!(!Property::DeadlockFree.needs_monitor());
        let e2e = Property::EndToEndResponse {
            from: "cLink_sent".into(),
            to: "cLink_consumed".into(),
            bound: 8,
        };
        assert_eq!(
            e2e.name(),
            "end-to-end-response(cLink_sent -> cLink_consumed within 8)"
        );
        assert!(e2e.needs_monitor());
        assert_eq!(
            e2e.monitor_spec(),
            Some(("cLink_sent", "cLink_consumed", 8))
        );
        assert_eq!(Property::NeverRaised("*".into()).monitor_spec(), None);
        let ltl = Property::parse_ltl("never raised(*Alarm*)").unwrap();
        assert_eq!(ltl.name(), "never raised(*Alarm*)");
        assert_eq!(ltl.monitor_spec(), None);
    }

    #[test]
    fn built_ins_desugar_to_the_documented_formulas() {
        assert_eq!(
            Property::NeverRaised("*Alarm*".into())
                .ltl()
                .unwrap()
                .expr(),
            "never raised(*Alarm*)"
        );
        assert_eq!(
            Property::BoundedResponse {
                trigger: "Deadline".into(),
                response: "Resume".into(),
                bound: 2,
            }
            .ltl()
            .unwrap()
            .expr(),
            "always Deadline implies Resume within 2"
        );
        assert_eq!(
            Property::EndToEndResponse {
                from: "c_sent".into(),
                to: "c_consumed".into(),
                bound: 8,
            }
            .ltl()
            .unwrap()
            .expr(),
            "always c_sent implies c_consumed within 8"
        );
        assert!(Property::DeadlockFree.ltl().is_none());
        assert!(Property::DeadlockFree.monitor().is_none());
    }

    #[test]
    fn desugared_monitors_have_the_legacy_register_footprint() {
        // NeverRaised is stateless; a response property keeps exactly the
        // one countdown register the legacy monitor used — so desugaring
        // cannot change the explored state space.
        assert_eq!(
            Property::NeverRaised("*Alarm*".into())
                .monitor()
                .unwrap()
                .register_count(),
            0
        );
        assert_eq!(
            Property::BoundedResponse {
                trigger: "t".into(),
                response: "r".into(),
                bound: 3,
            }
            .monitor()
            .unwrap()
            .register_count(),
            1
        );
    }
}
