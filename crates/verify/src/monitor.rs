//! Compilation of past-time LTL formulas into deterministic monitor
//! automata.
//!
//! An [`LtlMonitor`] turns a [`Formula`] into a register machine that is
//! advanced once per resolved instant: every temporal operator of the
//! formula owns exactly one `u32` register (the classical past-time-LTL
//! monitoring construction — `previously`/`once`/`historically`/`since`
//! keep one bit of history, `within` keeps the remaining-deadline
//! countdown of the bounded-response automaton). The registers live in the
//! explored [`crate::State`] alongside the delay memories and the
//! scheduler phase, so user-supplied properties flow unchanged through
//! per-thread exploration ([`crate::Verifier`]), the product
//! ([`crate::ProductVerifier`]), counterexample replay and the lockstep
//! co-simulation.
//!
//! A formula with no temporal operator compiles to a *stateless* monitor
//! (zero registers): checking it never enlarges the state space. This is
//! why the [`crate::Property::NeverRaised`] desugaring is cost-free, and
//! why [`crate::Property::BoundedResponse`] compiles to exactly the one
//! countdown register the hand-written legacy monitor used.
//!
//! The monitor is cross-validated against the brute-force reference
//! semantics of [`crate::ltl::eval`] by property-based tests: for every
//! formula and every trace, stepping the monitor instant by instant must
//! produce the same truth sequence as re-evaluating the formula over each
//! prefix.
//!
//! ```
//! use polyverify::ltl::LtlProperty;
//! use polyverify::monitor::LtlMonitor;
//! use signal_moc::trace::TraceStep;
//! use signal_moc::value::Value;
//!
//! let property = LtlProperty::parse("always (Alarm implies once Deadline)")?;
//! let monitor = LtlMonitor::new(property.invariant().clone());
//! assert_eq!(monitor.register_count(), 1); // one register for `once`
//!
//! let mut registers = monitor.initial();
//! let mut alarm = TraceStep::new();
//! alarm.set("Alarm", Value::Bool(true));
//! // An alarm with no prior deadline violates the invariant.
//! assert!(!monitor.step(&mut registers, &alarm).holds);
//! # Ok::<(), polyverify::ltl::ParseError>(())
//! ```

use signal_moc::InstantView;

use crate::ltl::Formula;
use crate::property::{raised_signal, signal_true};
use crate::state::MONITOR_IDLE;

/// What one monitor step observed: the truth value of the formula at this
/// instant, plus the witness details used to annotate violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorStep {
    /// The value of the formula at this instant; `false` is a violation of
    /// the invariant.
    pub holds: bool,
    /// `true` when a `within` deadline expired unanswered at this instant.
    pub expired: bool,
    /// The first signal matched by a `raised(...)` atom at this instant,
    /// if any.
    pub raised: Option<String>,
}

/// A deterministic monitor automaton compiled from a past-time LTL
/// invariant. See the [module documentation](self) for the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtlMonitor {
    invariant: Formula,
    initial: Vec<u32>,
}

impl LtlMonitor {
    /// Compiles the invariant, assigning one register per temporal
    /// operator (pre-order).
    pub fn new(invariant: Formula) -> Self {
        let mut initial = Vec::with_capacity(invariant.temporal_count());
        collect_initial(&invariant, &mut initial);
        Self { invariant, initial }
    }

    /// The invariant this monitor checks at every instant.
    pub fn invariant(&self) -> &Formula {
        &self.invariant
    }

    /// Number of `u32` registers the monitor keeps in the explored state.
    pub fn register_count(&self) -> usize {
        self.initial.len()
    }

    /// The register values before the first instant.
    pub fn initial(&self) -> Vec<u32> {
        self.initial.clone()
    }

    /// Advances the monitor over one resolved instant — any
    /// [`InstantView`], so the hot exploration paths can step monitors over
    /// borrowed evaluator state without materialising a
    /// [`signal_moc::trace::TraceStep`] — updating `registers` in place and
    /// returning the truth value of the invariant at this instant.
    ///
    /// # Panics
    ///
    /// Panics when `registers.len()` differs from
    /// [`LtlMonitor::register_count`].
    pub fn step<V: InstantView + ?Sized>(&self, registers: &mut [u32], step: &V) -> MonitorStep {
        assert_eq!(
            registers.len(),
            self.initial.len(),
            "monitor stepped with a register slice of the wrong width"
        );
        let mut out = MonitorStep {
            holds: true,
            expired: false,
            raised: None,
        };
        let mut cursor = 0usize;
        out.holds = eval_step(&self.invariant, step, registers, &mut cursor, &mut out);
        debug_assert_eq!(cursor, registers.len(), "register walk out of sync");
        out
    }
}

/// Initial register value of each temporal operator, in the same pre-order
/// walk [`eval_step`] uses.
fn collect_initial(formula: &Formula, out: &mut Vec<u32>) {
    match formula {
        Formula::Const(_) | Formula::Signal(_) | Formula::Present(_) | Formula::Raised(_) => {}
        Formula::Not(a) => collect_initial(a, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect_initial(a, out);
            collect_initial(b, out);
        }
        Formula::Previously(a) | Formula::Once(a) => {
            out.push(0);
            collect_initial(a, out);
        }
        Formula::Historically(a) => {
            out.push(1);
            collect_initial(a, out);
        }
        Formula::Since(a, b) => {
            out.push(0);
            collect_initial(a, out);
            collect_initial(b, out);
        }
        Formula::Within {
            trigger, response, ..
        } => {
            out.push(MONITOR_IDLE);
            collect_initial(trigger, out);
            collect_initial(response, out);
        }
    }
}

/// Evaluates `formula` at the current instant, reading each temporal
/// operator's register (its value *before* this instant) and writing the
/// updated value back. Both operands of every connective are evaluated
/// unconditionally — short-circuiting would skip register updates of the
/// unevaluated side and desynchronise the monitor.
fn eval_step<V: InstantView + ?Sized>(
    formula: &Formula,
    step: &V,
    registers: &mut [u32],
    cursor: &mut usize,
    out: &mut MonitorStep,
) -> bool {
    match formula {
        Formula::Const(b) => *b,
        Formula::Signal(name) => signal_true(step, name),
        Formula::Present(name) => step.is_present(name),
        Formula::Raised(pattern) => match raised_signal(pattern, step) {
            Some(signal) => {
                out.raised.get_or_insert(signal);
                true
            }
            None => false,
        },
        Formula::Not(a) => !eval_step(a, step, registers, cursor, out),
        Formula::And(a, b) => {
            let va = eval_step(a, step, registers, cursor, out);
            let vb = eval_step(b, step, registers, cursor, out);
            va && vb
        }
        Formula::Or(a, b) => {
            let va = eval_step(a, step, registers, cursor, out);
            let vb = eval_step(b, step, registers, cursor, out);
            va || vb
        }
        Formula::Implies(a, b) => {
            let va = eval_step(a, step, registers, cursor, out);
            let vb = eval_step(b, step, registers, cursor, out);
            !va || vb
        }
        Formula::Previously(a) => {
            let slot = claim(cursor);
            let before = registers[slot] != 0;
            let now = eval_step(a, step, registers, cursor, out);
            registers[slot] = u32::from(now);
            before
        }
        Formula::Once(a) => {
            let slot = claim(cursor);
            let now = eval_step(a, step, registers, cursor, out) || registers[slot] != 0;
            registers[slot] = u32::from(now);
            now
        }
        Formula::Historically(a) => {
            let slot = claim(cursor);
            let now = eval_step(a, step, registers, cursor, out) && registers[slot] != 0;
            registers[slot] = u32::from(now);
            now
        }
        Formula::Since(a, b) => {
            let slot = claim(cursor);
            let va = eval_step(a, step, registers, cursor, out);
            let vb = eval_step(b, step, registers, cursor, out);
            let now = vb || (va && registers[slot] != 0);
            registers[slot] = u32::from(now);
            now
        }
        Formula::Within {
            trigger,
            response,
            bound,
        } => {
            let slot = claim(cursor);
            let trig = eval_step(trigger, step, registers, cursor, out);
            let resp = eval_step(response, step, registers, cursor, out);
            let mut register = registers[slot];
            let mut expired = false;
            if register != MONITOR_IDLE {
                if resp {
                    register = MONITOR_IDLE;
                } else {
                    // Armed registers are always in 1..=bound: hitting 0
                    // means the response window just closed unanswered.
                    register -= 1;
                    if register == 0 {
                        expired = true;
                        register = MONITOR_IDLE;
                    }
                }
            }
            if !expired && trig && !resp && register == MONITOR_IDLE {
                if *bound == 0 {
                    expired = true;
                } else {
                    register = *bound;
                }
            }
            registers[slot] = register;
            if expired {
                out.expired = true;
            }
            !expired
        }
    }
}

fn claim(cursor: &mut usize) -> usize {
    let slot = *cursor;
    *cursor += 1;
    slot
}

/// One property's compiled monitor and where its registers live in the
/// concatenated monitor vector of the explored [`crate::State`].
#[derive(Debug, Clone)]
pub(crate) struct CompiledProperty {
    /// Index of the property in the caller's property list.
    pub index: usize,
    /// Offset of the first register in the concatenated vector.
    pub offset: usize,
    /// Number of registers.
    pub len: usize,
    /// The compiled monitor.
    pub monitor: LtlMonitor,
}

impl CompiledProperty {
    /// Steps this property's monitor over its slice of the concatenated
    /// register vector.
    pub fn step<V: InstantView + ?Sized>(&self, registers: &mut [u32], step: &V) -> MonitorStep {
        self.monitor
            .step(&mut registers[self.offset..self.offset + self.len], step)
    }
}

/// Compiles every monitored property of a list (everything except
/// [`crate::Property::DeadlockFree`], which is a successor-existence
/// property, not a trace formula) and lays their registers out in one
/// concatenated vector — the `monitors` component of the canonical
/// [`crate::State`]. Returns the compiled properties and the initial
/// register vector.
pub(crate) fn compile_properties(
    properties: &[crate::Property],
) -> (Vec<CompiledProperty>, Vec<u32>) {
    let mut compiled = Vec::new();
    let mut initial = Vec::new();
    for (index, property) in properties.iter().enumerate() {
        if let Some(monitor) = property.monitor() {
            let registers = monitor.initial();
            compiled.push(CompiledProperty {
                index,
                offset: initial.len(),
                len: registers.len(),
                monitor,
            });
            initial.extend(registers);
        }
    }
    (compiled, initial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::{eval, first_violation, LtlProperty};
    use signal_moc::trace::TraceStep;
    use signal_moc::value::Value;

    fn step(pairs: &[(&str, bool)]) -> TraceStep {
        let mut s = TraceStep::new();
        for (name, value) in pairs {
            s.set(*name, Value::Bool(*value));
        }
        s
    }

    /// Runs the monitor over a trace and returns the per-instant truth
    /// sequence.
    fn monitor_values(monitor: &LtlMonitor, steps: &[TraceStep]) -> Vec<bool> {
        let mut registers = monitor.initial();
        steps
            .iter()
            .map(|s| monitor.step(&mut registers, s).holds)
            .collect()
    }

    #[test]
    fn stateless_formulas_compile_to_zero_registers() {
        let property = LtlProperty::parse("never raised(*Alarm*)").unwrap();
        let monitor = LtlMonitor::new(property.invariant().clone());
        assert_eq!(monitor.register_count(), 0);
        let mut registers = monitor.initial();
        let quiet = step(&[("Alarm", false)]);
        let fired = step(&[("th_Alarm", true)]);
        assert!(monitor.step(&mut registers, &quiet).holds);
        let out = monitor.step(&mut registers, &fired);
        assert!(!out.holds);
        assert_eq!(out.raised.as_deref(), Some("th_Alarm"));
    }

    #[test]
    fn within_register_matches_the_legacy_bounded_response_monitor() {
        // bound 2: trigger, one quiet instant, then response -> satisfied;
        // bound 1: trigger then quiet -> expires one instant later.
        let monitor = LtlMonitor::new(Formula::within(
            Formula::signal("t"),
            Formula::signal("r"),
            2,
        ));
        assert_eq!(monitor.register_count(), 1);
        assert_eq!(monitor.initial(), vec![MONITOR_IDLE]);
        let trace = [step(&[("t", true)]), step(&[]), step(&[("r", true)])];
        assert_eq!(monitor_values(&monitor, &trace), vec![true, true, true]);

        let tight = LtlMonitor::new(Formula::within(
            Formula::signal("t"),
            Formula::signal("r"),
            1,
        ));
        let mut registers = tight.initial();
        assert!(tight.step(&mut registers, &trace[0]).holds);
        assert_eq!(registers, vec![1]);
        let out = tight.step(&mut registers, &trace[1]);
        assert!(!out.holds);
        assert!(out.expired);
        // After an expiry the register returns to idle and keeps monitoring.
        assert_eq!(registers, vec![MONITOR_IDLE]);
    }

    #[test]
    fn bound_zero_requires_a_same_instant_response() {
        let monitor = LtlMonitor::new(Formula::within(
            Formula::signal("t"),
            Formula::signal("r"),
            0,
        ));
        let mut registers = monitor.initial();
        assert!(
            monitor
                .step(&mut registers, &step(&[("t", true), ("r", true)]))
                .holds
        );
        assert!(!monitor.step(&mut registers, &step(&[("t", true)])).holds);
    }

    #[test]
    fn monitor_agrees_with_the_reference_semantics_on_hand_picked_formulas() {
        let traces = [
            vec![step(&[("a", true)]), step(&[("b", true)]), step(&[])],
            vec![
                step(&[]),
                step(&[("a", true), ("b", false)]),
                step(&[("a", true)]),
                step(&[("b", true)]),
            ],
        ];
        for src in [
            "always previously a",
            "always (once a implies b)",
            "always historically (a or not b)",
            "always (not a since b)",
            "always (a implies b within 1)",
            "always (previously (a since b) or once (a and b))",
        ] {
            let property = LtlProperty::parse(src).unwrap();
            let monitor = LtlMonitor::new(property.invariant().clone());
            for trace in &traces {
                let stepped = monitor_values(&monitor, trace);
                let reference: Vec<bool> = (0..trace.len())
                    .map(|t| eval(property.invariant(), trace, t))
                    .collect();
                assert_eq!(stepped, reference, "{src}");
            }
        }
    }

    #[test]
    fn first_violation_agrees_between_monitor_and_reference() {
        let property = LtlProperty::parse("always (a implies b within 1)").unwrap();
        let monitor = LtlMonitor::new(property.invariant().clone());
        let trace = vec![step(&[("a", true)]), step(&[]), step(&[])];
        let by_monitor = monitor_values(&monitor, &trace)
            .iter()
            .position(|holds| !holds);
        assert_eq!(by_monitor, first_violation(property.invariant(), &trace));
        assert_eq!(by_monitor, Some(1));
    }

    #[test]
    fn compile_properties_lays_registers_out_in_property_order() {
        use crate::Property;
        let properties = [
            Property::NeverRaised("*Alarm*".into()),
            Property::DeadlockFree,
            Property::BoundedResponse {
                trigger: "t".into(),
                response: "r".into(),
                bound: 3,
            },
            Property::Ltl(LtlProperty::parse("always (once a implies previously b)").unwrap()),
        ];
        let (compiled, initial) = compile_properties(&properties);
        // DeadlockFree has no monitor; NeverRaised is stateless.
        assert_eq!(compiled.len(), 3);
        assert_eq!(compiled[0].index, 0);
        assert_eq!(compiled[0].len, 0);
        assert_eq!(compiled[1].index, 2);
        assert_eq!((compiled[1].offset, compiled[1].len), (0, 1));
        assert_eq!(compiled[2].index, 3);
        assert_eq!((compiled[2].offset, compiled[2].len), (1, 2));
        assert_eq!(initial, vec![MONITOR_IDLE, 0, 0]);
    }
}
