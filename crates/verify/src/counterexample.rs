//! Concrete counterexample traces and their deterministic replay in the
//! co-simulator.
//!
//! A violation found by the explorer comes back as the exact input trace
//! that drives the process from its initial state into the violation. The
//! trace replays in [`polysim::Simulator`] — an independent execution path —
//! so every verdict can be confirmed outside the model checker.

use polysim::Simulator;
use serde::{Deserialize, Serialize};
use signal_moc::error::SignalError;
use signal_moc::process::Process;
use signal_moc::trace::Trace;

use crate::property::Property;

/// A concrete violation witness: the input trace leading from the initial
/// state to the violating instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The violated property.
    pub property: Property,
    /// The input steps from the initial state up to and including the
    /// violating instant.
    pub inputs: Trace,
    /// Index of the violating instant (the last step of `inputs`).
    pub violation_instant: usize,
    /// Human-readable witness detail (e.g. the alarm signal that fired, or
    /// the evaluator error that makes the scheduled step non-executable).
    pub witness: String,
}

/// Outcome of replaying a counterexample in the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// `true` when the independent simulator run reproduces the violation.
    pub reproduced: bool,
    /// What the replay observed.
    pub detail: String,
    /// The full resolved trace of the replay (empty when the replay ends in
    /// the expected evaluator error of a deadlock counterexample).
    pub trace: Trace,
}

impl Counterexample {
    /// Replays the counterexample in a fresh [`Simulator`] over `process`,
    /// using default [`crate::VerifyOptions`] when a free-mode dead end has
    /// to re-enumerate candidate valuations. If the violation was found
    /// under custom value domains or branching caps, use
    /// [`Counterexample::replay_with_options`] with the same options.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors; evaluation errors are part
    /// of the expected outcome for deadlock counterexamples and are folded
    /// into the report.
    pub fn replay(&self, process: &Process) -> Result<ReplayReport, SignalError> {
        self.replay_with_options(process, &crate::explore::VerifyOptions::default())
    }

    /// Replays the counterexample in a fresh [`Simulator`] over `process`.
    ///
    /// For a free-mode dead-end counterexample (a `DeadlockFree` violation
    /// whose `violation_instant` lies past the end of `inputs`), the
    /// candidate input valuations are re-enumerated under `options` — pass
    /// the options the verification ran with so the probed candidate set
    /// matches — and each is probed in a cloned simulator: the dead end
    /// counts as reproduced only when every progress candidate is rejected,
    /// so a pruning bug in the checker cannot be rubber-stamped by its own
    /// replay.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn replay_with_options(
        &self,
        process: &Process,
        options: &crate::explore::VerifyOptions,
    ) -> Result<ReplayReport, SignalError> {
        let mut simulator = Simulator::new(process)?;
        if matches!(self.property, Property::DeadlockFree)
            && self.violation_instant >= self.inputs.len()
        {
            return Ok(self.replay_dead_end(process, options, &mut simulator));
        }
        Ok(self.replay_in(&mut simulator))
    }

    /// Confirms a free-mode dead end: the prefix must execute, and every
    /// enumerated progress candidate (rebuilt independently from the
    /// process under `options`) must be rejected from the dead state.
    fn replay_dead_end(
        &self,
        process: &Process,
        options: &crate::explore::VerifyOptions,
        simulator: &mut Simulator,
    ) -> ReplayReport {
        use crate::explore::Verifier;

        simulator.reset();
        let out = match simulator.run(&self.inputs) {
            Ok(out) => out,
            Err(e) => {
                return ReplayReport {
                    reproduced: false,
                    detail: format!("counterexample prefix failed to execute: {e}"),
                    trace: Trace::new(),
                }
            }
        };
        // A free-mode dead end means no progress valuation is feasible:
        // non-silent ones for an open process, the silent one for a closed
        // process (whose silent step is its autonomous progress). Probe
        // exactly those.
        let all_candidates = match Verifier::new(process, options.clone())
            .and_then(|verifier| verifier.free_candidates().map(|(candidates, _)| candidates))
        {
            Ok(candidates) => candidates,
            Err(e) => {
                return ReplayReport {
                    reproduced: false,
                    detail: format!("cannot rebuild the candidate enumeration: {e}"),
                    trace: out,
                }
            }
        };
        let has_nonsilent = all_candidates.iter().any(|c| !c.is_silent());
        let candidates: Vec<signal_moc::trace::TraceStep> = all_candidates
            .into_iter()
            .filter(|c| !c.is_silent() || !has_nonsilent)
            .collect();
        for candidate in &candidates {
            let mut probe = simulator.clone();
            let one: Trace = std::iter::once(candidate.clone()).collect();
            if probe.run(&one).is_ok() {
                let present: Vec<String> =
                    candidate.iter().map(|(n, v)| format!("{n}={v}")).collect();
                return ReplayReport {
                    reproduced: false,
                    detail: format!(
                        "dead end refuted: candidate valuation {{{}}} executes",
                        present.join(" ")
                    ),
                    trace: out,
                };
            }
        }
        ReplayReport {
            reproduced: true,
            detail: format!(
                "prefix replays; all {} candidate valuations rejected from the dead state",
                candidates.len()
            ),
            trace: out,
        }
    }

    /// Replays the counterexample in an existing simulator, resetting its
    /// state first so the replay starts from the initial state.
    pub fn replay_in(&self, simulator: &mut Simulator) -> ReplayReport {
        simulator.reset();
        match &self.property {
            Property::DeadlockFree => {
                // The prefix up to the dead state must execute; the final
                // scheduled step (when present in the trace) must not.
                let prefix: Trace = self
                    .inputs
                    .iter()
                    .take(self.violation_instant)
                    .cloned()
                    .collect();
                match simulator.run(&prefix) {
                    Ok(out) => {
                        if self.violation_instant >= self.inputs.len() {
                            // Without the process the candidates cannot be
                            // re-enumerated here; `Counterexample::replay`
                            // performs the full dead-end probing.
                            return ReplayReport {
                                reproduced: true,
                                detail: "prefix replays; dead end not independently probed \
                                         (use Counterexample::replay for candidate probing)"
                                    .to_string(),
                                trace: out,
                            };
                        }
                        let last: Trace = self
                            .inputs
                            .iter()
                            .skip(self.violation_instant)
                            .cloned()
                            .collect();
                        match simulator.run(&last) {
                            Err(e) => ReplayReport {
                                reproduced: true,
                                detail: format!(
                                    "scheduled step {} is not executable: {e}",
                                    self.violation_instant
                                ),
                                trace: out,
                            },
                            Ok(_) => ReplayReport {
                                reproduced: false,
                                detail: "scheduled step executed during replay".to_string(),
                                trace: simulator.history().clone(),
                            },
                        }
                    }
                    Err(e) => ReplayReport {
                        reproduced: false,
                        detail: format!("counterexample prefix failed to execute: {e}"),
                        trace: Trace::new(),
                    },
                }
            }
            property => {
                // One replay path for every trace property — built-in shape
                // or user LTL: re-run the compiled monitor over the resolved
                // trace of an independent simulator run and check that the
                // earliest violation lands on the claimed instant.
                let monitor = property
                    .monitor()
                    .expect("every non-deadlock property compiles to a monitor");
                match simulator.run(&self.inputs) {
                    Ok(out) => {
                        let mut registers = monitor.initial();
                        let mut violated_at = None;
                        for (t, step) in out.iter().enumerate() {
                            let observed = monitor.step(&mut registers, step);
                            if !observed.holds {
                                violated_at = Some((t, observed));
                                break;
                            }
                        }
                        match violated_at {
                            Some((t, observed)) => ReplayReport {
                                reproduced: t == self.violation_instant,
                                detail: format!(
                                    "{} at instant {t} of the replay",
                                    property.violation_witness(&observed)
                                ),
                                trace: out,
                            },
                            None => ReplayReport {
                                reproduced: false,
                                detail: format!(
                                    "property `{}` not violated in the replay",
                                    property.name()
                                ),
                                trace: out,
                            },
                        }
                    }
                    Err(e) => ReplayReport {
                        reproduced: false,
                        detail: format!("replay failed to execute: {e}"),
                        trace: Trace::new(),
                    },
                }
            }
        }
    }

    /// Renders the input trace as a compact instant-by-instant listing.
    pub fn render(&self) -> String {
        let mut out = format!(
            "counterexample for {} ({} instants, violation at instant {}):\n",
            self.property.name(),
            self.inputs.len(),
            self.violation_instant
        );
        for (t, step) in self.inputs.iter().enumerate() {
            let present: Vec<String> = step
                .iter()
                .filter(|(_, v)| v.as_bool())
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            out.push_str(&format!(
                "  t={t:<3} {}\n",
                if present.is_empty() {
                    "(all low)".to_string()
                } else {
                    present.join(" ")
                }
            ));
        }
        out.push_str(&format!("  witness: {}\n", self.witness));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::expr::Expr;
    use signal_moc::value::{Value, ValueType};

    fn alarm_process() -> Process {
        let mut b = ProcessBuilder::new("frame");
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.define(
            "Alarm",
            Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))),
        );
        b.synchronize(&["Deadline", "Resume", "Alarm"]);
        b.build().unwrap()
    }

    fn step(deadline: bool, resume: bool) -> signal_moc::trace::TraceStep {
        let mut s = signal_moc::trace::TraceStep::new();
        s.set("Deadline", Value::Bool(deadline));
        s.set("Resume", Value::Bool(resume));
        s
    }

    #[test]
    fn never_raised_replay_reproduces() {
        let cex = Counterexample {
            property: Property::NeverRaised("*Alarm*".into()),
            inputs: vec![step(false, false), step(true, false)]
                .into_iter()
                .collect(),
            violation_instant: 1,
            witness: "Alarm".into(),
        };
        let report = cex.replay(&alarm_process()).unwrap();
        assert!(report.reproduced, "{}", report.detail);
        assert_eq!(report.trace.len(), 2);
        assert!(cex.render().contains("witness: Alarm"));
    }

    #[test]
    fn never_raised_replay_detects_non_reproduction() {
        let cex = Counterexample {
            property: Property::NeverRaised("*Alarm*".into()),
            inputs: vec![step(true, true)].into_iter().collect(),
            violation_instant: 0,
            witness: "Alarm".into(),
        };
        let report = cex.replay(&alarm_process()).unwrap();
        assert!(!report.reproduced);
    }

    #[test]
    fn bounded_response_replay_reproduces() {
        let cex = Counterexample {
            property: Property::BoundedResponse {
                trigger: "Deadline".into(),
                response: "Resume".into(),
                bound: 1,
            },
            inputs: vec![step(true, false), step(false, false)]
                .into_iter()
                .collect(),
            violation_instant: 1,
            witness: "deadline expired".into(),
        };
        let report = cex.replay(&alarm_process()).unwrap();
        assert!(report.reproduced, "{}", report.detail);
    }
}
