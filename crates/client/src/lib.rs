//! Thin blocking client for `polychronyd`, the verification daemon.
//!
//! One [`Client`] owns one connection (unix socket or TCP) and speaks the
//! `polychrony-wire-v1` protocol from [`polywire`]. The API is
//! deliberately synchronous — a request method writes one frame and blocks
//! for the response — because every caller in this workspace (the
//! `polychrony submit|status|watch|stop` CLI, the tests, the bench
//! harness) wants exactly that shape; streaming arrives through the
//! [`Client::wait`] loop, which surfaces `progress` frames to a callback
//! until the final `result`.
//!
//! Connection failures are ordinary, expected events (the daemon may
//! simply not be running), so they are a dedicated [`ClientError::Connect`]
//! variant that the CLI maps to a clean exit code 2 instead of a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use polyobs::ProgressUpdate;
use polywire::{
    read_frame, write_frame, Frame, JobSpec, JobState, JobStatus, WireError, WireReport,
};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7433`.
    Tcp(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A failure while talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect — most commonly the daemon is not running.
    Connect {
        /// The endpoint that refused.
        endpoint: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
    /// The connection broke or the peer sent malformed frames.
    Wire(WireError),
    /// The daemon answered with an `error` frame.
    Daemon(String),
    /// The daemon answered with a frame the request does not expect.
    UnexpectedFrame(String),
    /// The daemon closed the connection mid-request.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { endpoint, source } => {
                write!(f, "cannot connect to polychronyd at {endpoint}: {source}")
            }
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Daemon(message) => write!(f, "daemon refused the request: {message}"),
            ClientError::UnexpectedFrame(kind) => {
                write!(f, "unexpected {kind:?} frame from the daemon")
            }
            ClientError::Disconnected => write!(f, "daemon closed the connection mid-request"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect { source, .. } => Some(source),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One blocking connection to the daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Endpoint {
    /// Opens a connection to the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the socket cannot be opened (daemon
    /// not running, stale socket path, port closed).
    pub fn connect(&self) -> Result<Client, ClientError> {
        let connect_err = |source| ClientError::Connect {
            endpoint: self.to_string(),
            source,
        };
        let (read_half, write_half): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match self {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(connect_err)?;
                let clone = stream.try_clone().map_err(connect_err)?;
                (Box::new(stream), Box::new(clone))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr).map_err(connect_err)?;
                let clone = stream.try_clone().map_err(connect_err)?;
                (Box::new(stream), Box::new(clone))
            }
        };
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: write_half,
        })
    }
}

impl Client {
    /// Writes one frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] when the stream fails.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    /// Reads the next frame, treating EOF as [`ClientError::Disconnected`]
    /// and an `error` frame as [`ClientError::Daemon`].
    ///
    /// A daemon that dies mid-stream does not always produce a clean EOF
    /// at a frame boundary: the kernel may report the closed peer as an
    /// unexpected-EOF inside a frame, a connection reset, or a broken
    /// pipe. All of those are the same event from the caller's point of
    /// view, so they are folded into [`ClientError::Disconnected`] too —
    /// the CLI maps it to the same clean exit 2 as connection-refused.
    ///
    /// # Errors
    ///
    /// Also [`ClientError::Wire`] for framing failures (malformed frames,
    /// oversized lengths) and stream errors other than a closed peer.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        use std::io::ErrorKind;
        match read_frame(&mut self.reader) {
            Ok(Some(Frame::Error { message })) => Err(ClientError::Daemon(message)),
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Disconnected),
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                Err(ClientError::Disconnected)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Submits a job; with `watch` the connection then streams progress
    /// (drive it with [`Client::wait`]). Returns the assigned job id and
    /// its initial state.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] when the daemon rejects the spec, plus the
    /// transport errors of [`Client::recv`].
    pub fn submit(&mut self, spec: &JobSpec, watch: bool) -> Result<(u64, JobState), ClientError> {
        self.send(&Frame::Submit {
            spec: spec.clone(),
            watch,
        })?;
        match self.recv()? {
            Frame::Ack { id, state } => Ok((id, state)),
            other => Err(ClientError::UnexpectedFrame(other.kind().to_string())),
        }
    }

    /// Fetches status rows: one job by id, or the whole table.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] for unknown ids, plus transport errors.
    pub fn status(&mut self, id: Option<u64>) -> Result<Vec<JobStatus>, ClientError> {
        self.send(&Frame::Status { id })?;
        match self.recv()? {
            Frame::Jobs { jobs } => Ok(jobs),
            other => Err(ClientError::UnexpectedFrame(other.kind().to_string())),
        }
    }

    /// Cancels a queued or running job, returning its state after the
    /// request (a `Cancelled` ack is binding: the job never reports a
    /// completed result afterwards).
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] for unknown ids, plus transport errors.
    pub fn cancel(&mut self, id: u64) -> Result<JobState, ClientError> {
        self.send(&Frame::Cancel { id })?;
        match self.recv()? {
            Frame::Ack { state, .. } => Ok(state),
            other => Err(ClientError::UnexpectedFrame(other.kind().to_string())),
        }
    }

    /// Subscribes to an existing job's progress stream; follow with
    /// [`Client::wait`].
    ///
    /// # Errors
    ///
    /// Transport errors only — the subscription outcome arrives in the
    /// stream itself.
    pub fn watch(&mut self, id: u64) -> Result<(), ClientError> {
        self.send(&Frame::Watch { id })
    }

    /// Drains the progress stream of a watched job: every `progress` frame
    /// is handed to `on_progress`, and the final `result` frame ends the
    /// loop.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] when the daemon reports the job unknown,
    /// [`ClientError::Disconnected`] when it exits mid-stream, plus
    /// transport errors.
    pub fn wait(
        &mut self,
        mut on_progress: impl FnMut(u64, &ProgressUpdate),
    ) -> Result<(u64, WireReport), ClientError> {
        loop {
            match self.recv()? {
                Frame::Progress { id, update } => on_progress(id, &update),
                Frame::Result { id, report } => return Ok((id, report)),
                // An `ack` can interleave when the caller submitted several
                // jobs on one connection before waiting.
                Frame::Ack { .. } => {}
                other => return Err(ClientError::UnexpectedFrame(other.kind().to_string())),
            }
        }
    }

    /// Asks the daemon to finish running jobs and exit.
    ///
    /// # Errors
    ///
    /// Transport errors of [`Client::recv`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Ack { .. } => Ok(()),
            other => Err(ClientError::UnexpectedFrame(other.kind().to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connecting_to_a_missing_socket_is_a_connect_error() {
        let endpoint = Endpoint::Unix(PathBuf::from("/nonexistent/polychronyd.sock"));
        match endpoint.connect() {
            Err(ClientError::Connect { endpoint, .. }) => {
                assert!(
                    endpoint.contains("/nonexistent/polychronyd.sock"),
                    "{endpoint}"
                );
            }
            other => panic!("expected a connect error, got {other:?}"),
        }
    }

    #[test]
    fn connecting_to_a_closed_tcp_port_is_a_connect_error() {
        // Bind then drop a listener so the port is momentarily known-closed.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let endpoint = Endpoint::Tcp(format!("127.0.0.1:{port}"));
        assert!(matches!(
            endpoint.connect(),
            Err(ClientError::Connect { .. })
        ));
    }
}
