//! Extraction of thread-to-thread event-port connections from the AADL
//! instance model — the synchronising actions of compositional (product)
//! verification.
//!
//! A [`ConnectionInstance`](aadl::instance::ConnectionInstance) carries full
//! component paths; this module keeps only the port connections whose both
//! endpoints are thread instances (connections that cross the hierarchy
//! through container interfaces, e.g. environment inputs, are not part of
//! the thread product) and resolves them to the conventional signal names of
//! the translation: the sender's `<port>_output_time` release and the
//! receiver's `<port>_in` arrival.

use aadl::ast::{ConnectionKind, PortDirection};
use aadl::error::AadlError;
use aadl::instance::InstanceModel;
use serde::{Deserialize, Serialize};

/// One event-port connection between two thread instances, resolved to
/// instance names and port names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadConnection {
    /// Short connection name (the declared name, without the enclosing
    /// instance path).
    pub name: String,
    /// Instance name of the sending thread.
    pub source_thread: String,
    /// Out port of the sending thread.
    pub source_port: String,
    /// Instance name of the receiving thread.
    pub target_thread: String,
    /// In port of the receiving thread.
    pub target_port: String,
    /// `true` when the connection is declared with `Timing => Delayed`.
    pub delayed: bool,
}

impl ThreadConnection {
    /// The sender-side schedule signal marking an emission.
    pub fn source_signal(&self) -> String {
        format!("{}_output_time", self.source_port)
    }

    /// The receiver-side input signal carrying the delivered event.
    pub fn target_signal(&self) -> String {
        format!("{}_in", self.target_port)
    }
}

/// Extracts every thread-to-thread event-port connection of an instance
/// model, in declaration order.
///
/// # Errors
///
/// Propagates [`AadlError`] from thread extraction (malformed timing
/// properties).
pub fn thread_connections(instance: &InstanceModel) -> Result<Vec<ThreadConnection>, AadlError> {
    let threads = instance.threads()?;
    let mut out = Vec::new();
    for conn in &instance.connections {
        if conn.kind != ConnectionKind::Port {
            continue;
        }
        let Some(source) = threads.iter().find(|t| t.path == conn.source_component) else {
            continue;
        };
        let Some(target) = threads
            .iter()
            .find(|t| t.path == conn.destination_component)
        else {
            continue;
        };
        // Both endpoints must be ports with the right direction on the
        // threads themselves.
        let source_ok = source.features.iter().any(|f| {
            f.name == conn.source_feature
                && f.kind.is_port()
                && matches!(f.direction, PortDirection::Out | PortDirection::InOut)
        });
        let target_ok = target.features.iter().any(|f| {
            f.name == conn.destination_feature
                && f.kind.is_port()
                && matches!(f.direction, PortDirection::In | PortDirection::InOut)
        });
        if !source_ok || !target_ok {
            continue;
        }
        let short_name = conn.name.rsplit('.').next().unwrap_or(&conn.name);
        out.push(ThreadConnection {
            name: short_name.to_string(),
            source_thread: source.name.clone(),
            source_port: conn.source_feature.clone(),
            target_thread: target.name.clone(),
            target_port: conn.destination_feature.clone(),
            delayed: conn.delayed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::case_study::producer_consumer_instance;
    use aadl::synth::{generate_instance, SyntheticSpec};

    #[test]
    fn case_study_yields_the_six_timer_connections() {
        let instance = producer_consumer_instance().unwrap();
        let connections = thread_connections(&instance).unwrap();
        let names: Vec<&str> = connections.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cProdStartTimer",
                "cProdStopTimer",
                "cProdTimeout",
                "cConsStartTimer",
                "cConsStopTimer",
                "cConsTimeout",
            ]
        );
        let start = &connections[0];
        assert_eq!(start.source_thread, "thProducer");
        assert_eq!(start.source_port, "pProdStartTimer");
        assert_eq!(start.target_thread, "thProdTimer");
        assert_eq!(start.target_port, "pStartTimer");
        assert_eq!(start.source_signal(), "pProdStartTimer_output_time");
        assert_eq!(start.target_signal(), "pStartTimer_in");
        assert!(!start.delayed);
        // Environment and display connections cross the hierarchy: skipped.
        assert!(!names.contains(&"cEnvData"));
        assert!(!names.contains(&"cProdAlarm"));
    }

    #[test]
    fn synthetic_chain_is_extracted() {
        let instance = generate_instance(&SyntheticSpec::new(3, 2)).unwrap();
        let connections = thread_connections(&instance).unwrap();
        // (3-1) threads chained with 2 ports each.
        assert_eq!(connections.len(), 4);
        assert_eq!(connections[0].source_thread, "t0");
        assert_eq!(connections[0].target_thread, "t1");
    }
}
