//! Translation of an AADL thread into a SIGNAL process (Fig. 4 of the
//! paper).
//!
//! The generated process has:
//! * the control bundle `ctl1` — `Dispatch`, `Resume`, `Deadline` — as
//!   boolean inputs on the tick clock;
//! * one frozen-time input per in port and one output-time input per out
//!   port (the `time1` bundle);
//! * one boolean data input per in event (data) port and one boolean output
//!   per out event (data) port;
//! * the `ctl2` bundle — `Complete`, `Error` — and the `Alarm` output that
//!   fires when a timing property is violated;
//! * one library-port instance per port and a simple behaviour that consumes
//!   every frozen input and produces on every out port at each dispatch.

use aadl::ast::{FeatureKind, PortDirection};
use aadl::instance::ThreadInstance;
use aadl::properties::queue_size;
use serde::{Deserialize, Serialize};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::value::{Value, ValueType};

use crate::library::{IN_EVENT_PORT_PROCESS, OUT_EVENT_PORT_PROCESS};

/// The result of translating one thread: the SIGNAL process plus the names
/// of the timing signals the scheduler must drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTranslation {
    /// The generated SIGNAL process (named after the thread instance).
    pub process: Process,
    /// Names of the in ports translated to `in_event_port` instances.
    pub in_ports: Vec<String>,
    /// Names of the out ports translated to `out_event_port` instances.
    pub out_ports: Vec<String>,
    /// Names of the timing inputs (dispatch, deadline, frozen/output times)
    /// that the thread-level scheduler must provide.
    pub timing_inputs: Vec<String>,
}

/// Translates `thread` into a SIGNAL process named `process_name`.
///
/// The translation is structural: the behaviour body is a placeholder that
/// counts dispatches (real behaviour would come from the AADL behaviour
/// annex, which the paper leaves as future work), but every port, control
/// and property-checking signal of Fig. 4 is generated.
pub fn thread_to_process(process_name: &str, thread: &ThreadInstance) -> ThreadTranslation {
    let mut b = ProcessBuilder::new(process_name);
    let mut in_ports = Vec::new();
    let mut out_ports = Vec::new();
    let mut timing_inputs = Vec::new();

    // ctl1 bundle.
    for ctl in ["Dispatch", "Resume", "Deadline"] {
        b.input(ctl, ValueType::Boolean);
        timing_inputs.push(ctl.to_string());
    }

    // Ports.
    for feature in &thread.features {
        if !feature.kind.is_port() {
            continue;
        }
        match feature.direction {
            PortDirection::In | PortDirection::InOut => {
                let incoming = format!("{}_in", feature.name);
                let freeze = format!("{}_frozen_time", feature.name);
                let count = format!("{}_frozen_count", feature.name);
                let dropped = format!("{}_dropped", feature.name);
                b.input(&incoming, ValueType::Boolean);
                b.input(&freeze, ValueType::Boolean);
                b.local(&count, ValueType::Integer);
                b.local(&dropped, ValueType::Boolean);
                timing_inputs.push(freeze.clone());
                let label = format!("port_{}", feature.name);
                b.instance(
                    IN_EVENT_PORT_PROCESS,
                    &label,
                    &[incoming.as_str(), freeze.as_str()],
                    &[count.as_str(), dropped.as_str()],
                );
                in_ports.push(feature.name.clone());
                // Queue size is recorded for traceability.
                if let FeatureKind::EventPort | FeatureKind::EventDataPort { .. } = feature.kind {
                    b.annotate(
                        format!("aadl::queue_size::{}", feature.name),
                        queue_size(&feature.properties).to_string(),
                    );
                }
            }
            PortDirection::Out => {
                let produced = format!("{}_produced", feature.name);
                let release = format!("{}_output_time", feature.name);
                let sent = format!("{}_out", feature.name);
                let backlog = format!("{}_backlog", feature.name);
                b.local(&produced, ValueType::Boolean);
                b.input(&release, ValueType::Boolean);
                b.output(&sent, ValueType::Integer);
                b.local(&backlog, ValueType::Integer);
                timing_inputs.push(release.clone());
                let label = format!("port_{}", feature.name);
                b.instance(
                    OUT_EVENT_PORT_PROCESS,
                    &label,
                    &[produced.as_str(), release.as_str()],
                    &[sent.as_str(), backlog.as_str()],
                );
                // Behaviour placeholder: produce one event on every dispatch.
                b.define(&produced, Expr::var("Dispatch"));
                out_ports.push(feature.name.clone());
            }
        }
    }

    // ctl2 bundle and behaviour placeholder.
    b.output("Complete", ValueType::Boolean);
    b.output("Error", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("dispatch_count", ValueType::Integer);
    b.local("done", ValueType::Boolean);

    // dispatch_count counts dispatches (placeholder behaviour).
    b.define(
        "dispatch_count",
        Expr::default(
            Expr::when(
                Expr::add(
                    Expr::delay(Expr::var("dispatch_count"), Value::Int(0)),
                    Expr::int(1),
                ),
                Expr::var("Dispatch"),
            ),
            Expr::delay(Expr::var("dispatch_count"), Value::Int(0)),
        ),
    );
    // In the scheduled input-compute-output model the computation completes
    // when the scheduler raises Resume (the start/complete event): Complete
    // mirrors Resume. `done` remembers whether the current frame's
    // computation has completed since the last dispatch.
    b.define("Complete", Expr::var("Resume"));
    b.define("Error", Expr::bool(false));
    b.define(
        "done",
        Expr::default(
            Expr::when(Expr::bool(true), Expr::var("Resume")),
            Expr::default(
                Expr::when(Expr::bool(false), Expr::var("Dispatch")),
                Expr::delay(Expr::var("done"), Value::Bool(true)),
            ),
        ),
    );
    // Alarm: the deadline event arrives while the frame dispatched before it
    // has not completed — the property check of Fig. 4.
    b.define(
        "Alarm",
        Expr::and(
            Expr::var("Deadline"),
            Expr::not(Expr::or(
                Expr::var("Resume"),
                Expr::delay(Expr::var("done"), Value::Bool(true)),
            )),
        ),
    );
    b.synchronize(&[
        "Dispatch",
        "Resume",
        "Deadline",
        "Complete",
        "Error",
        "Alarm",
        "done",
        "dispatch_count",
    ]);

    // Traceability annotations (Section IV-E).
    b.annotate("aadl::path", thread.path.clone());
    b.annotate("aadl::category", "thread");
    if let Some(period) = thread.timing.period {
        b.annotate("aadl::period", period.to_string());
    }
    if let Some(deadline) = thread.timing.effective_deadline() {
        b.annotate("aadl::deadline", deadline.to_string());
    }

    let process = b.build_unchecked();
    ThreadTranslation {
        process,
        in_ports,
        out_ports,
        timing_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::case_study::producer_consumer_instance;
    use signal_moc::process::ProcessModel;

    fn producer() -> ThreadInstance {
        let model = producer_consumer_instance().unwrap();
        model
            .threads()
            .unwrap()
            .into_iter()
            .find(|t| t.name == "thProducer")
            .unwrap()
    }

    #[test]
    fn producer_translation_matches_fig4_shape() {
        let tr = thread_to_process("thProducer", &producer());
        let p = &tr.process;
        // ctl1 bundle present.
        for ctl in ["Dispatch", "Resume", "Deadline"] {
            assert!(p.signal(ctl).is_some(), "missing {ctl}");
        }
        // ctl2 bundle + Alarm present.
        for out in ["Complete", "Error", "Alarm"] {
            assert!(p.signal(out).is_some(), "missing {out}");
        }
        // Ports: 3 in event ports (pProdStart, pEnvData, pTimeOut) and
        // 2 out event ports (pProdStartTimer, pProdStopTimer).
        assert_eq!(tr.in_ports.len(), 3);
        assert_eq!(tr.out_ports.len(), 2);
        // Frozen-time inputs exist for in ports.
        assert!(p.signal("pProdStart_frozen_time").is_some());
        assert!(p.signal("pProdStartTimer_output_time").is_some());
        // Timing inputs are ctl1 + one per port.
        assert_eq!(tr.timing_inputs.len(), 3 + 3 + 2);
        // Traceability annotation carries the AADL path and period.
        assert!(p.annotations["aadl::path"].ends_with("thProducer"));
        assert_eq!(p.annotations["aadl::period"], "4 ms");
    }

    #[test]
    fn translated_thread_validates_inside_a_model() {
        let tr = thread_to_process("thProducer", &producer());
        let mut model = ProcessModel::new("thProducer");
        model.add(tr.process.clone());
        model.add(crate::library::in_event_port_process(1));
        model.add(crate::library::out_event_port_process());
        model.validate().unwrap();
        let flat = model.flatten().unwrap();
        assert!(flat.equation_count() > tr.process.equation_count());
    }

    #[test]
    fn alarm_fires_without_completion() {
        use signal_moc::eval::Evaluator;
        use signal_moc::trace::Trace;
        use signal_moc::value::Value;

        let tr = thread_to_process("thProducer", &producer());
        let mut model = ProcessModel::new("thProducer");
        model.add(tr.process.clone());
        model.add(crate::library::in_event_port_process(1));
        model.add(crate::library::out_event_port_process());
        let flat = model.flatten().unwrap();

        let mut inputs = Trace::new();
        // One frame where the deadline arrives but Resume never fired.
        for t in 0..2usize {
            inputs.set(t, "Dispatch", Value::Bool(t == 0));
            inputs.set(t, "Resume", Value::Bool(false));
            inputs.set(t, "Deadline", Value::Bool(t == 1));
            for port in ["pProdStart", "pEnvData", "pTimeOut"] {
                inputs.set(t, format!("{port}_in"), Value::Bool(false));
                inputs.set(t, format!("{port}_frozen_time"), Value::Bool(t == 0));
            }
            for port in ["pProdStartTimer", "pProdStopTimer"] {
                inputs.set(t, format!("{port}_output_time"), Value::Bool(false));
            }
        }
        let out = Evaluator::new(&flat).unwrap().run(&inputs).unwrap();
        let alarms: Vec<bool> = out.flow_of("Alarm").iter().map(|v| v.as_bool()).collect();
        assert_eq!(alarms, vec![false, true]);
    }

    #[test]
    fn all_case_study_threads_translate() {
        let model = producer_consumer_instance().unwrap();
        for thread in model.threads().unwrap() {
            let tr = thread_to_process(&thread.name, &thread);
            assert!(tr.process.equation_count() >= 6, "{}", thread.name);
            assert!(!tr.timing_inputs.is_empty());
        }
    }
}
