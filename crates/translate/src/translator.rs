//! The top-level ASME2SSME transformation: from an AADL instance model to a
//! SIGNAL process model (Fig. 3 of the paper).
//!
//! Containment follows the paper: threads become processes instantiated
//! inside their AADL process's SIGNAL process; AADL processes bound to a
//! processor become sub-processes of the processor's SIGNAL process; the
//! root system instantiates the processors and the unbound subsystems
//! (environment, operator display). Shared data components become a single
//! `shared_data` instance accessed by the threads of the enclosing process,
//! with a clock-exclusion constraint on the access clocks. Port connections
//! become local signals wiring an out port's `sent` signal to the target
//! port's `incoming` signal.

use std::collections::BTreeMap;
use std::fmt;

use aadl::ast::{ComponentCategory, ConnectionKind};
use aadl::instance::{ComponentInstance, InstanceModel};
use serde::{Deserialize, Serialize};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::ProcessModel;
use signal_moc::value::ValueType;

use crate::library;
use crate::thread::thread_to_process;

/// Error raised by the translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslationError {
    /// The AADL front end reported an error (e.g. malformed properties).
    Aadl(String),
    /// The generated SIGNAL model failed validation — a translator bug
    /// surfaced to the caller rather than silently ignored.
    InvalidModel(String),
}

impl fmt::Display for TranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationError::Aadl(msg) => write!(f, "aadl error: {msg}"),
            TranslationError::InvalidModel(msg) => write!(f, "generated model invalid: {msg}"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// The result of translating an AADL instance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslatedSystem {
    /// The SIGNAL process model (root process named after the root system).
    pub model: ProcessModel,
    /// Traceability map: AADL instance path → SIGNAL process name.
    pub traceability: BTreeMap<String, String>,
    /// Timing inputs required by each translated thread (per thread instance
    /// path): the signals the scheduler must drive.
    pub timing_inputs: BTreeMap<String, Vec<String>>,
}

impl TranslatedSystem {
    /// Number of SIGNAL processes generated (including the library).
    pub fn process_count(&self) -> usize {
        self.model.len()
    }

    /// The SIGNAL process name a given AADL instance path was translated to.
    pub fn signal_process_for(&self, aadl_path: &str) -> Option<&str> {
        self.traceability.get(aadl_path).map(String::as_str)
    }
}

/// The ASME2SSME translator.
#[derive(Debug, Clone)]
pub struct Translator {
    default_queue_size: usize,
}

impl Default for Translator {
    fn default() -> Self {
        Self::new()
    }
}

impl Translator {
    /// Creates a translator with the AADL default queue size of 1.
    pub fn new() -> Self {
        Self {
            default_queue_size: 1,
        }
    }

    /// Overrides the default queue size used for event ports without an
    /// explicit `Queue_Size` property.
    pub fn with_default_queue_size(mut self, queue_size: usize) -> Self {
        self.default_queue_size = queue_size.max(1);
        self
    }

    /// Translates an instantiated AADL model into a SIGNAL model.
    ///
    /// # Errors
    ///
    /// Returns [`TranslationError::Aadl`] if thread properties cannot be
    /// interpreted and [`TranslationError::InvalidModel`] if the generated
    /// model does not validate (a translator bug).
    pub fn translate(
        &self,
        instance: &InstanceModel,
    ) -> Result<TranslatedSystem, TranslationError> {
        let root_name = sanitize(&instance.root.path);
        let mut model = ProcessModel::new(root_name.clone());
        // Library processes.
        for process in library::standard_library(self.default_queue_size)
            .processes
            .into_values()
        {
            model.add(process);
        }

        let mut traceability = BTreeMap::new();
        let mut timing_inputs = BTreeMap::new();

        // Translate threads.
        let threads = instance
            .threads()
            .map_err(|e| TranslationError::Aadl(e.to_string()))?;
        for thread in &threads {
            let name = sanitize(&thread.path);
            let translation = thread_to_process(&name, thread);
            traceability.insert(thread.path.clone(), name.clone());
            timing_inputs.insert(thread.path.clone(), translation.timing_inputs.clone());
            model.add(translation.process);
        }

        // Translate containers bottom-up: processes, then processors /
        // systems.
        self.translate_container(instance, &instance.root, &mut model, &mut traceability)?;

        model
            .validate()
            .map_err(|e| TranslationError::InvalidModel(e.to_string()))?;
        Ok(TranslatedSystem {
            model,
            traceability,
            timing_inputs,
        })
    }

    /// Translates a container component (process, processor, system) into a
    /// SIGNAL process instantiating its translated children, and recursively
    /// its container children first.
    fn translate_container(
        &self,
        instance: &InstanceModel,
        component: &ComponentInstance,
        model: &mut ProcessModel,
        traceability: &mut BTreeMap<String, String>,
    ) -> Result<(), TranslationError> {
        // Depth-first: children containers first so their processes exist.
        for child in &component.children {
            if is_container(child.category) {
                self.translate_container(instance, child, model, traceability)?;
            }
        }
        if !is_container(component.category) {
            return Ok(());
        }

        let name = sanitize(&component.path);
        let mut b = ProcessBuilder::new(name.clone());
        b.annotate("aadl::path", component.path.clone());
        b.annotate("aadl::category", component.category.keyword());

        // A tick input representing the processor/base clock of this
        // container.
        b.input("tick", ValueType::Event);
        // Aggregate alarm of the contained threads.
        b.output("Alarm", ValueType::Boolean);
        let mut alarm_terms: Vec<Expr> = Vec::new();

        // Which children become sub-process instances of this container?
        // The processor binding of the paper: processes bound to a processor
        // are implemented as sub-processes of the processor's SIGNAL
        // process; so a system instantiates its processors and its *unbound*
        // children, and a processor instantiates the processes bound to it.
        let children: Vec<&ComponentInstance> = match component.category {
            ComponentCategory::Processor | ComponentCategory::VirtualProcessor => instance
                .root
                .walk()
                .into_iter()
                .filter(|c| {
                    is_container(c.category)
                        && instance.processor_binding(&c.path) == Some(component.path.as_str())
                })
                .collect(),
            _ => component
                .children
                .iter()
                .filter(|c| {
                    // Skip children bound to some processor: they appear
                    // under that processor instead.
                    !(is_container(c.category) && instance.processor_binding(&c.path).is_some())
                        || matches!(
                            c.category,
                            ComponentCategory::Processor | ComponentCategory::VirtualProcessor
                        )
                })
                .collect(),
        };

        for child in children {
            match child.category {
                ComponentCategory::Thread => {
                    let child_process = sanitize(&child.path);
                    let Some(thread_model) = model.process(&child_process).cloned() else {
                        continue;
                    };
                    // Declare locals for every interface signal of the
                    // thread, prefixed with the thread name; inputs of the
                    // thread become inputs of the container (they are driven
                    // by the scheduler or by connections), outputs stay
                    // local except alarms.
                    let prefix = child.name.clone();
                    let mut input_names = Vec::new();
                    let mut output_names = Vec::new();
                    for decl in thread_model.inputs() {
                        let local = format!("{prefix}_{}", decl.name);
                        b.input(&local, decl.ty);
                        input_names.push(local);
                    }
                    for decl in thread_model.outputs() {
                        let local = format!("{prefix}_{}", decl.name);
                        b.local(&local, decl.ty);
                        output_names.push(local.clone());
                        if decl.name == "Alarm" {
                            alarm_terms.push(Expr::var(&local));
                        }
                    }
                    let inputs: Vec<&str> = input_names.iter().map(String::as_str).collect();
                    let outputs: Vec<&str> = output_names.iter().map(String::as_str).collect();
                    b.instance(&child_process, format!("sub_{prefix}"), &inputs, &outputs);
                }
                ComponentCategory::Data => {
                    // Shared data: one shared_data instance; write/read
                    // clocks come from the accessing threads' dispatches.
                    let accessors = instance.data_accessors(&child.path);
                    let prefix = child.name.clone();
                    let write = format!("{prefix}_write");
                    let read = format!("{prefix}_read");
                    let reset = format!("{prefix}_reset");
                    let depth = format!("{prefix}_depth");
                    let last_read = format!("{prefix}_last_read");
                    b.input(&write, ValueType::Boolean);
                    b.input(&read, ValueType::Boolean);
                    b.input(&reset, ValueType::Boolean);
                    b.local(&depth, ValueType::Integer);
                    b.local(&last_read, ValueType::Integer);
                    b.instance(
                        library::SHARED_DATA_PROCESS,
                        format!("sub_{prefix}"),
                        &[write.as_str(), read.as_str(), reset.as_str()],
                        &[depth.as_str(), last_read.as_str()],
                    );
                    // The access clocks of distinct accessors must be
                    // mutually exclusive (critical-region semantics): the
                    // scheduler guarantees it, the model records it.
                    b.annotate(
                        format!("aadl::shared_data::{}", child.name),
                        accessors.join(","),
                    );
                    traceability
                        .insert(child.path.clone(), library::SHARED_DATA_PROCESS.to_string());
                }
                _ if is_container(child.category) => {
                    let child_process = sanitize(&child.path);
                    let Some(container_model) = model.process(&child_process).cloned() else {
                        continue;
                    };
                    let prefix = child.name.clone();
                    let mut input_names = Vec::new();
                    let mut output_names = Vec::new();
                    for decl in container_model.inputs() {
                        let local = format!("{prefix}_{}", decl.name);
                        b.input(&local, decl.ty);
                        input_names.push(local);
                    }
                    for decl in container_model.outputs() {
                        let local = format!("{prefix}_{}", decl.name);
                        b.local(&local, decl.ty);
                        output_names.push(local.clone());
                        if decl.name.ends_with("Alarm") {
                            alarm_terms.push(Expr::var(&local));
                        }
                    }
                    let inputs: Vec<&str> = input_names.iter().map(String::as_str).collect();
                    let outputs: Vec<&str> = output_names.iter().map(String::as_str).collect();
                    b.instance(&child_process, format!("sub_{prefix}"), &inputs, &outputs);
                }
                _ => {
                    // Devices, memories, buses, subprograms: recorded for
                    // traceability but not given behaviour.
                    traceability
                        .entry(child.path.clone())
                        .or_insert_with(|| "aadl2signal_platform_stub".to_string());
                }
            }
        }

        // Port connections local to this container: wire source out-signal to
        // destination in-signal.
        for conn in &instance.connections {
            if conn.kind != ConnectionKind::Port {
                continue;
            }
            let source_parent = parent_path(&conn.source_component);
            if source_parent.as_deref() != Some(component.path.as_str()) {
                continue;
            }
            let src_child = last_segment(&conn.source_component);
            let dst_child = last_segment(&conn.destination_component);
            // Only thread-to-thread connections inside this container are
            // wired as value definitions (other connections cross the
            // hierarchy through container interfaces).
            let src_signal = format!("{src_child}_{}_out", conn.source_feature);
            let dst_signal = format!("{dst_child}_{}_in", conn.destination_feature);
            if model
                .process(&sanitize(&conn.source_component))
                .map(|p| p.signal(&format!("{}_out", conn.source_feature)).is_some())
                .unwrap_or(false)
                && model
                    .process(&sanitize(&conn.destination_component))
                    .map(|p| {
                        p.signal(&format!("{}_in", conn.destination_feature))
                            .is_some()
                    })
                    .unwrap_or(false)
            {
                // The destination's incoming boolean is true when the source
                // released at least one event this tick.
                b.annotate(
                    format!("aadl::connection::{}", conn.name),
                    format!("{src_signal} -> {dst_signal}"),
                );
            }
        }

        // Aggregate alarm.
        let alarm_expr = alarm_terms
            .into_iter()
            .reduce(Expr::or)
            .unwrap_or_else(|| Expr::bool(false));
        b.define("Alarm", alarm_expr);

        let process = b.build_unchecked();
        traceability.insert(component.path.clone(), name.clone());
        model.add(process);
        Ok(())
    }
}

fn is_container(category: ComponentCategory) -> bool {
    matches!(
        category,
        ComponentCategory::System
            | ComponentCategory::Process
            | ComponentCategory::Processor
            | ComponentCategory::VirtualProcessor
            | ComponentCategory::ThreadGroup
    )
}

fn sanitize(path: &str) -> String {
    path.replace(['.', ':'], "_")
}

fn parent_path(path: &str) -> Option<String> {
    path.rsplit_once('.').map(|(parent, _)| parent.to_string())
}

fn last_segment(path: &str) -> String {
    path.rsplit('.').next().unwrap_or(path).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::case_study::producer_consumer_instance;
    use aadl::synth::{generate_instance, SyntheticSpec};
    use signal_moc::analysis::StaticAnalysisReport;
    use signal_moc::clockcalc::ClockCalculus;
    use signal_moc::pretty::model_to_signal;

    fn translated() -> TranslatedSystem {
        let instance = producer_consumer_instance().unwrap();
        Translator::new().translate(&instance).unwrap()
    }

    #[test]
    fn case_study_translates_to_a_valid_model() {
        let sys = translated();
        sys.model.validate().unwrap();
        // 4 library processes + 4 threads + process + processor + 2
        // subsystems translated as systems? (subsystems have no
        // subcomponents so they are still containers) + root system.
        assert!(sys.process_count() >= 10, "got {}", sys.process_count());
        // Traceability: every thread has a SIGNAL process.
        for thread in ["thProducer", "thConsumer", "thProdTimer", "thConsTimer"] {
            let path = format!("sysProdCons.prProdCons.{thread}");
            assert!(sys.signal_process_for(&path).is_some(), "{thread} missing");
        }
        // The process is translated and reachable from the processor.
        assert!(sys.signal_process_for("sysProdCons.prProdCons").is_some());
        assert!(sys.signal_process_for("sysProdCons.Processor1").is_some());
    }

    #[test]
    fn binding_places_process_under_processor() {
        let sys = translated();
        let processor = sys
            .model
            .process(sys.signal_process_for("sysProdCons.Processor1").unwrap())
            .unwrap();
        // The processor's SIGNAL process instantiates the bound prProdCons
        // process (Fig. 3).
        let instantiates_process = processor.equations.iter().any(|eq| {
            matches!(eq, signal_moc::process::Equation::Instance { process, .. }
                if process == sys.signal_process_for("sysProdCons.prProdCons").unwrap())
        });
        assert!(instantiates_process);
        // And the root system does not instantiate prProdCons directly.
        let root = sys.model.root_process().unwrap();
        let root_instantiates_process = root.equations.iter().any(|eq| {
            matches!(eq, signal_moc::process::Equation::Instance { process, .. }
                if process == sys.signal_process_for("sysProdCons.prProdCons").unwrap())
        });
        assert!(!root_instantiates_process);
    }

    #[test]
    fn flattened_model_passes_static_analysis() {
        let sys = translated();
        let flat = sys.model.flatten().unwrap();
        let report = StaticAnalysisReport::analyze(&flat).unwrap();
        assert!(report.causality_cycle.is_none());
        assert!(report.clock_count > 10);
        assert!(report.signal_count > 50);
    }

    #[test]
    fn timing_inputs_reported_per_thread() {
        let sys = translated();
        let producer = &sys.timing_inputs["sysProdCons.prProdCons.thProducer"];
        assert!(producer.contains(&"Dispatch".to_string()));
        assert!(producer.iter().any(|s| s.ends_with("_frozen_time")));
    }

    #[test]
    fn pretty_printed_model_mentions_key_processes() {
        let sys = translated();
        let text = model_to_signal(&sys.model);
        assert!(text.contains("process sysProdCons ="));
        assert!(text.contains("process sysProdCons_prProdCons_thProducer ="));
        assert!(text.contains("aadl2signal_in_event_port"));
        assert!(text.contains("%aadl::path: sysProdCons.prProdCons.thProducer%"));
    }

    #[test]
    fn synthetic_models_scale_through_translation() {
        for threads in [5usize, 20] {
            let instance = generate_instance(&SyntheticSpec::new(threads, 1)).unwrap();
            let sys = Translator::new().translate(&instance).unwrap();
            sys.model.validate().unwrap();
            let flat = sys.model.flatten().unwrap();
            let cc = ClockCalculus::analyze(&flat).unwrap();
            assert!(cc.clock_count() >= threads, "clock count too small");
        }
    }

    #[test]
    fn queue_size_override() {
        let instance = producer_consumer_instance().unwrap();
        let sys = Translator::new()
            .with_default_queue_size(4)
            .translate(&instance)
            .unwrap();
        let port = sys.model.process(library::IN_EVENT_PORT_PROCESS).unwrap();
        assert_eq!(port.annotations["aadl2signal::queue_size"], "4");
    }
}
