//! ASME2SSME: the AADL-to-SIGNAL model transformation of the paper, plus the
//! AADL2SIGNAL library of reusable polychronous processes.
//!
//! The transformation takes an instantiated AADL model (from the [`aadl`]
//! crate) and produces a SIGNAL [`signal_moc::ProcessModel`]:
//!
//! * every **thread** becomes a SIGNAL process with the control bundle
//!   (`Dispatch`, `Resume`, `Deadline`), the frozen/output time signals, the
//!   `Complete`/`Error` events and the `Alarm` output of Fig. 4
//!   ([`thread`]);
//! * every **in event port** becomes an instance of the `in_event_port`
//!   library process (an `in_fifo`/`frozen_fifo` pair, Fig. 5), every out
//!   event port an `out_event_port` instance ([`library`]);
//! * **shared data** becomes a single `shared_data` instance written through
//!   partial definitions at mutually exclusive access clocks (Fig. 6)
//!   ([`library`], [`translator`]);
//! * **processes, processors and systems** become container processes that
//!   instantiate their children and wire the port connections; the processor
//!   binding makes bound processes sub-processes of the processor's SIGNAL
//!   process (Fig. 3) ([`translator`]);
//! * the thread-level schedule synthesised by the [`sched`] crate is
//!   exported as affine clocks and as the timing-signal traces that drive
//!   the simulation ([`schedule`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connections;
pub mod library;
pub mod schedule;
pub mod thread;
pub mod translator;

pub use connections::{thread_connections, ThreadConnection};
pub use library::{
    in_event_port_process, memory_process, out_event_port_process, shared_data_process,
    standard_library,
};
pub use schedule::{
    schedule_to_timing_trace, scheduled_thread_model, system_under_schedule, task_set_from_threads,
    thread_under_schedule, ScheduledThreadModel, ThreadUnderScheduleError, TICKS_PER_MILLISECOND,
};
pub use thread::{thread_to_process, ThreadTranslation};
pub use translator::{TranslatedSystem, TranslationError, Translator};
