//! Integration of the thread-level scheduler with the translated model:
//! extraction of the periodic task set from AADL threads, and generation of
//! the timing-signal traces (the `ctl1`/`time1` bundles) that drive the
//! simulation of a scheduled model.

use aadl::instance::ThreadInstance;
use aadl::properties::DispatchProtocol;
use sched::{PeriodicTask, StaticSchedule, TaskSet, TaskSetError};
use signal_moc::trace::Trace;
use signal_moc::value::Value;

/// Number of scheduler ticks per millisecond (the case-study processor has a
/// 1 ms clock period, so one tick is one millisecond).
pub const TICKS_PER_MILLISECOND: u64 = 1;

/// Builds the periodic task set of the scheduler from the AADL thread
/// instances (the paper's step 1 input).
///
/// Aperiodic/sporadic threads are skipped (the case study and the synthetic
/// workloads are fully periodic); threads without a period are skipped as
/// well.
///
/// # Errors
///
/// Propagates [`TaskSetError`] when the extracted parameters are
/// inconsistent (e.g. a WCET larger than the deadline).
pub fn task_set_from_threads(threads: &[ThreadInstance]) -> Result<TaskSet, TaskSetError> {
    let mut tasks = Vec::new();
    for thread in threads {
        if thread.timing.dispatch_protocol != DispatchProtocol::Periodic {
            continue;
        }
        let Some(period) = thread.timing.period else {
            continue;
        };
        let period_ticks = period.as_millis().max(1) * TICKS_PER_MILLISECOND;
        let deadline_ticks = thread
            .timing
            .effective_deadline()
            .map(|d| d.as_millis().max(1) * TICKS_PER_MILLISECOND)
            .unwrap_or(period_ticks);
        let wcet_ticks = thread
            .timing
            .execution_time_max
            .map(|d| (d.as_millis() * TICKS_PER_MILLISECOND).max(1))
            .unwrap_or(1);
        let offset_ticks = thread
            .timing
            .dispatch_offset
            .map(|d| d.as_millis() * TICKS_PER_MILLISECOND)
            .unwrap_or(0);
        let mut task = PeriodicTask::new(
            thread.name.clone(),
            period_ticks,
            deadline_ticks,
            wcet_ticks,
        )
        .with_offset(offset_ticks);
        if let Some(priority) = thread.timing.priority {
            task = task.with_priority(priority);
        }
        tasks.push(task);
    }
    TaskSet::new(tasks)
}

/// Generates the timing-signal input trace for a translated thread over
/// `hyperperiods` repetitions of the schedule.
///
/// For the thread named `thread`, the produced trace drives, at every tick:
/// * `Dispatch` — true at the job's dispatch tick;
/// * `Resume` — true at the job's completion tick (the thread resumes the
///   waiting-for-dispatch state, which is also when `Complete` is emitted);
/// * `Deadline` — true at the job's absolute deadline tick;
/// * `<port>_frozen_time` for every `in_ports` entry — true at the job's
///   input-freeze tick;
/// * `<port>_output_time` for every `out_ports` entry — true at the job's
///   output-release tick.
///
/// Signal names are prefixed with `prefix` (empty for a stand-alone thread
/// process, `instanceLabel_` for signals of a flattened container).
pub fn schedule_to_timing_trace(
    schedule: &StaticSchedule,
    thread: &str,
    prefix: &str,
    in_ports: &[String],
    out_ports: &[String],
    hyperperiods: u64,
) -> Trace {
    let horizon = schedule.hyperperiod * hyperperiods;
    let mut trace = Trace::new();
    let name = |signal: &str| format!("{prefix}{signal}");
    // Initialise every controlled signal to false at every tick.
    for t in 0..horizon as usize {
        trace.set(t, name("Dispatch"), Value::Bool(false));
        trace.set(t, name("Resume"), Value::Bool(false));
        trace.set(t, name("Deadline"), Value::Bool(false));
        for port in in_ports {
            trace.set(t, name(&format!("{port}_frozen_time")), Value::Bool(false));
            trace.set(t, name(&format!("{port}_in")), Value::Bool(false));
        }
        for port in out_ports {
            trace.set(t, name(&format!("{port}_output_time")), Value::Bool(false));
        }
    }
    for rep in 0..hyperperiods {
        let base = rep * schedule.hyperperiod;
        for entry in schedule.entries_for(thread) {
            let at = |tick: u64| (base + tick) as usize;
            trace.set(at(entry.dispatch), name("Dispatch"), Value::Bool(true));
            trace.set(
                at(entry.completion.min(horizon - 1)),
                name("Resume"),
                Value::Bool(true),
            );
            if entry.deadline < schedule.hyperperiod {
                trace.set(at(entry.deadline), name("Deadline"), Value::Bool(true));
            }
            for port in in_ports {
                trace.set(
                    at(entry.input_freeze),
                    name(&format!("{port}_frozen_time")),
                    Value::Bool(true),
                );
            }
            for port in out_ports {
                trace.set(
                    at(entry.output_release.min(horizon - 1)),
                    name(&format!("{port}_output_time")),
                    Value::Bool(true),
                );
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::case_study::producer_consumer_instance;
    use sched::SchedulingPolicy;

    fn case_study_tasks() -> TaskSet {
        let model = producer_consumer_instance().unwrap();
        task_set_from_threads(&model.threads().unwrap()).unwrap()
    }

    #[test]
    fn task_set_extraction_matches_paper_parameters() {
        let tasks = case_study_tasks();
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks.hyperperiod(), Some(24));
        let producer = tasks.task("thProducer").unwrap();
        assert_eq!(producer.period, 4);
        assert_eq!(producer.deadline, 4);
        assert_eq!(producer.wcet, 1);
        assert_eq!(producer.priority, Some(4));
        let consumer = tasks.task("thConsumer").unwrap();
        assert_eq!(consumer.period, 6);
        assert_eq!(consumer.wcet, 2);
    }

    #[test]
    fn timing_trace_covers_every_dispatch() {
        let tasks = case_study_tasks();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        let trace = schedule_to_timing_trace(
            &schedule,
            "thProducer",
            "",
            &["pProdStart".into()],
            &["pProdStartTimer".into()],
            2,
        );
        assert_eq!(trace.len(), 48);
        let dispatch_ticks: Vec<usize> = (0..trace.len())
            .filter(|&t| {
                trace
                    .value(t, "Dispatch")
                    .map(|v| v.as_bool())
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(
            dispatch_ticks,
            vec![0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]
        );
        // Freeze times coincide with dispatches (Input_Time = Dispatch).
        for &t in &dispatch_ticks {
            assert_eq!(
                trace
                    .value(t, "pProdStart_frozen_time")
                    .map(|v| v.as_bool()),
                Some(true)
            );
        }
        // Resume (completion) happens after dispatch within the deadline.
        let resumes: Vec<usize> = (0..trace.len())
            .filter(|&t| {
                trace
                    .value(t, "Resume")
                    .map(|v| v.as_bool())
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(resumes.len(), 12);
    }

    #[test]
    fn prefixed_trace_uses_prefixed_names() {
        let tasks = case_study_tasks();
        let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic).unwrap();
        let trace = schedule_to_timing_trace(&schedule, "thConsumer", "thConsumer_", &[], &[], 1);
        assert!(trace.signals().iter().all(|s| s.starts_with("thConsumer_")));
        assert!(trace.value(0, "thConsumer_Dispatch").is_some());
    }

    #[test]
    fn aperiodic_threads_are_skipped() {
        use aadl::parse_package;
        use aadl::InstanceModel;
        let src = "package p\npublic\n  thread t\n  properties\n    Dispatch_Protocol => Aperiodic;\n  end t;\n  process w\n  end w;\n  process implementation w.impl\n  subcomponents\n    t1 : thread t;\n  end w.impl;\nend p;";
        let pkg = parse_package(src).unwrap();
        let inst = InstanceModel::instantiate(&pkg, "w.impl").unwrap();
        let tasks = task_set_from_threads(&inst.threads().unwrap()).unwrap();
        assert!(tasks.is_empty());
    }
}
