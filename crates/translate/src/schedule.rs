//! Integration of the thread-level scheduler with the translated model:
//! extraction of the periodic task set from AADL threads, and generation of
//! the timing-signal traces (the `ctl1`/`time1` bundles) that drive the
//! simulation of a scheduled model.

use aadl::instance::{InstanceModel, ThreadInstance};
use aadl::properties::DispatchProtocol;
use sched::{PeriodicTask, SchedulingPolicy, StaticSchedule, TaskSet, TaskSetError};
use signal_moc::error::SignalError;
use signal_moc::process::{Process, ProcessModel};
use signal_moc::trace::Trace;
use signal_moc::value::Value;

use crate::thread::thread_to_process;
use crate::translator::{TranslatedSystem, Translator};

/// Any failure while assembling a thread-under-schedule unit with
/// [`thread_under_schedule`], tagged by the phase that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadUnderScheduleError {
    /// Thread extraction from the instance model failed.
    Aadl(aadl::AadlError),
    /// Task-set construction failed.
    Tasks(TaskSetError),
    /// Schedule synthesis failed.
    Scheduling(sched::SchedulingError),
    /// The AADL-to-SIGNAL translation failed.
    Translation(crate::TranslationError),
    /// Flattening the thread's SIGNAL process failed.
    Signal(SignalError),
    /// The instance model has no thread with the requested name.
    UnknownThread(String),
    /// The translation produced no SIGNAL process for the thread.
    NoSignalProcess(String),
}

impl std::fmt::Display for ThreadUnderScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Aadl(e) => write!(f, "aadl: {e}"),
            Self::Tasks(e) => write!(f, "task set: {e}"),
            Self::Scheduling(e) => write!(f, "scheduling: {e}"),
            Self::Translation(e) => write!(f, "translation: {e}"),
            Self::Signal(e) => write!(f, "signal: {e}"),
            Self::UnknownThread(name) => write!(f, "no thread named `{name}` in the instance"),
            Self::NoSignalProcess(name) => {
                write!(f, "no SIGNAL process generated for thread `{name}`")
            }
        }
    }
}

impl std::error::Error for ThreadUnderScheduleError {}

/// One-call setup shared by the CLI, the examples, the benches and the
/// verification tests: extracts the threads of `instance`, synthesises the
/// static schedule under `policy`, translates the architecture, and builds
/// the [`ScheduledThreadModel`] of the thread named `thread_name`.
///
/// # Errors
///
/// Returns a [`ThreadUnderScheduleError`] tagged by the failing phase.
pub fn thread_under_schedule(
    instance: &InstanceModel,
    thread_name: &str,
    policy: SchedulingPolicy,
) -> Result<(ScheduledThreadModel, StaticSchedule), ThreadUnderScheduleError> {
    let threads = instance.threads().map_err(ThreadUnderScheduleError::Aadl)?;
    let tasks = task_set_from_threads(&threads).map_err(ThreadUnderScheduleError::Tasks)?;
    let schedule =
        StaticSchedule::synthesize(&tasks, policy).map_err(ThreadUnderScheduleError::Scheduling)?;
    let translated = Translator::new()
        .translate(instance)
        .map_err(ThreadUnderScheduleError::Translation)?;
    let thread = threads
        .iter()
        .find(|t| t.name == thread_name)
        .ok_or_else(|| ThreadUnderScheduleError::UnknownThread(thread_name.to_string()))?;
    let model = scheduled_thread_model(&translated, thread)
        .map_err(ThreadUnderScheduleError::Signal)?
        .ok_or_else(|| ThreadUnderScheduleError::NoSignalProcess(thread_name.to_string()))?;
    Ok((model, schedule))
}

/// One-call setup of the *whole* thread set for compositional (product)
/// verification: extracts every thread of `instance`, synthesises the joint
/// static schedule under `policy`, translates the architecture once, and
/// builds the [`ScheduledThreadModel`] of every thread that has a SIGNAL
/// process, together with the thread-to-thread event-port connections
/// ([`crate::ThreadConnection`]) that synchronise them. Shared by the
/// pipeline's product-verification phase, the CLI and the cross-validation
/// tests.
///
/// # Errors
///
/// Returns a [`ThreadUnderScheduleError`] tagged by the failing phase.
pub fn system_under_schedule(
    instance: &InstanceModel,
    policy: SchedulingPolicy,
) -> Result<
    (
        Vec<ScheduledThreadModel>,
        StaticSchedule,
        Vec<crate::ThreadConnection>,
    ),
    ThreadUnderScheduleError,
> {
    let threads = instance.threads().map_err(ThreadUnderScheduleError::Aadl)?;
    let tasks = task_set_from_threads(&threads).map_err(ThreadUnderScheduleError::Tasks)?;
    let schedule =
        StaticSchedule::synthesize(&tasks, policy).map_err(ThreadUnderScheduleError::Scheduling)?;
    let translated = Translator::new()
        .translate(instance)
        .map_err(ThreadUnderScheduleError::Translation)?;
    let mut models = Vec::new();
    for thread in &threads {
        if let Some(model) =
            scheduled_thread_model(&translated, thread).map_err(ThreadUnderScheduleError::Signal)?
        {
            models.push(model);
        }
    }
    let connections = crate::connections::thread_connections(instance)
        .map_err(ThreadUnderScheduleError::Aadl)?
        .into_iter()
        .filter(|c| {
            models.iter().any(|m| m.thread_name == c.source_thread)
                && models.iter().any(|m| m.thread_name == c.target_thread)
        })
        .collect();
    Ok((models, schedule, connections))
}

/// The simulation/verification unit of one translated thread: its flattened
/// SIGNAL process (thread process + the `aadl2signal_` library processes it
/// instantiates) and the port lists needed to derive its scheduled timing
/// trace. Built by [`scheduled_thread_model`] and shared by the pipeline,
/// the CLI, the examples, the benches and the cross-validation tests so the
/// flattening recipe cannot diverge between them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledThreadModel {
    /// Name of the thread (the key into the static schedule).
    pub thread_name: String,
    /// The flattened process, ready for `polysim`/`polyverify`.
    pub flat: Process,
    /// In event ports (drive `<port>_frozen_time` / `<port>_in`).
    pub in_ports: Vec<String>,
    /// Out event ports (drive `<port>_output_time`).
    pub out_ports: Vec<String>,
}

impl ScheduledThreadModel {
    /// The timing-signal input trace of this thread over `hyperperiods`
    /// repetitions of `schedule` (see [`schedule_to_timing_trace`]).
    pub fn timing_trace(&self, schedule: &StaticSchedule, hyperperiods: u64) -> Trace {
        schedule_to_timing_trace(
            schedule,
            &self.thread_name,
            "",
            &self.in_ports,
            &self.out_ports,
            hyperperiods,
        )
    }
}

/// Builds the [`ScheduledThreadModel`] of `thread` from a translated system:
/// looks up the thread's SIGNAL process, flattens it together with the
/// `aadl2signal_` library processes, and extracts the port lists. Returns
/// `Ok(None)` when the system has no SIGNAL process for the thread.
///
/// # Errors
///
/// Propagates flattening errors ([`SignalError`]).
pub fn scheduled_thread_model(
    system: &TranslatedSystem,
    thread: &ThreadInstance,
) -> Result<Option<ScheduledThreadModel>, SignalError> {
    let Some(process_name) = system.signal_process_for(&thread.path) else {
        return Ok(None);
    };
    let Some(process) = system.model.process(process_name) else {
        return Ok(None);
    };
    let mut model = ProcessModel::new(process_name.to_string());
    model.add(process.clone());
    for library in system.model.processes.values() {
        if library.name.starts_with("aadl2signal_") {
            model.add(library.clone());
        }
    }
    let flat = model.flatten()?;
    let translation = thread_to_process(process_name, thread);
    Ok(Some(ScheduledThreadModel {
        thread_name: thread.name.clone(),
        flat,
        in_ports: translation.in_ports,
        out_ports: translation.out_ports,
    }))
}

/// Number of scheduler ticks per millisecond (the case-study processor has a
/// 1 ms clock period, so one tick is one millisecond).
pub const TICKS_PER_MILLISECOND: u64 = 1;

/// Builds the periodic task set of the scheduler from the AADL thread
/// instances (the paper's step 1 input).
///
/// Aperiodic/sporadic threads are skipped (the case study and the synthetic
/// workloads are fully periodic); threads without a period are skipped as
/// well.
///
/// # Errors
///
/// Propagates [`TaskSetError`] when the extracted parameters are
/// inconsistent (e.g. a WCET larger than the deadline).
pub fn task_set_from_threads(threads: &[ThreadInstance]) -> Result<TaskSet, TaskSetError> {
    let mut tasks = Vec::new();
    for thread in threads {
        if thread.timing.dispatch_protocol != DispatchProtocol::Periodic {
            continue;
        }
        let Some(period) = thread.timing.period else {
            continue;
        };
        let period_ticks = period.as_millis().max(1) * TICKS_PER_MILLISECOND;
        let deadline_ticks = thread
            .timing
            .effective_deadline()
            .map(|d| d.as_millis().max(1) * TICKS_PER_MILLISECOND)
            .unwrap_or(period_ticks);
        let wcet_ticks = thread
            .timing
            .execution_time_max
            .map(|d| (d.as_millis() * TICKS_PER_MILLISECOND).max(1))
            .unwrap_or(1);
        let offset_ticks = thread
            .timing
            .dispatch_offset
            .map(|d| d.as_millis() * TICKS_PER_MILLISECOND)
            .unwrap_or(0);
        let mut task = PeriodicTask::new(
            thread.name.clone(),
            period_ticks,
            deadline_ticks,
            wcet_ticks,
        )
        .with_offset(offset_ticks);
        if let Some(priority) = thread.timing.priority {
            task = task.with_priority(priority);
        }
        tasks.push(task);
    }
    TaskSet::new(tasks)
}

/// Generates the timing-signal input trace for a translated thread over
/// `hyperperiods` repetitions of the schedule.
///
/// For the thread named `thread`, the produced trace drives, at every tick:
/// * `Dispatch` — true at the job's dispatch tick;
/// * `Resume` — true at the job's completion tick (the thread resumes the
///   waiting-for-dispatch state, which is also when `Complete` is emitted);
/// * `Deadline` — true at the job's absolute deadline tick;
/// * `<port>_frozen_time` for every `in_ports` entry — true at the job's
///   input-freeze tick;
/// * `<port>_output_time` for every `out_ports` entry — true at the job's
///   output-release tick.
///
/// Signal names are prefixed with `prefix` (empty for a stand-alone thread
/// process, `instanceLabel_` for signals of a flattened container).
pub fn schedule_to_timing_trace(
    schedule: &StaticSchedule,
    thread: &str,
    prefix: &str,
    in_ports: &[String],
    out_ports: &[String],
    hyperperiods: u64,
) -> Trace {
    let horizon = schedule.hyperperiod * hyperperiods;
    let mut trace = Trace::new();
    let name = |signal: &str| format!("{prefix}{signal}");
    // Initialise every controlled signal to false at every tick.
    for t in 0..horizon as usize {
        trace.set(t, name("Dispatch"), Value::Bool(false));
        trace.set(t, name("Resume"), Value::Bool(false));
        trace.set(t, name("Deadline"), Value::Bool(false));
        for port in in_ports {
            trace.set(t, name(&format!("{port}_frozen_time")), Value::Bool(false));
            trace.set(t, name(&format!("{port}_in")), Value::Bool(false));
        }
        for port in out_ports {
            trace.set(t, name(&format!("{port}_output_time")), Value::Bool(false));
        }
    }
    for rep in 0..hyperperiods {
        let base = rep * schedule.hyperperiod;
        for entry in schedule.entries_for(thread) {
            let at = |tick: u64| (base + tick) as usize;
            trace.set(at(entry.dispatch), name("Dispatch"), Value::Bool(true));
            trace.set(
                at(entry.completion.min(horizon - 1)),
                name("Resume"),
                Value::Bool(true),
            );
            if entry.deadline < schedule.hyperperiod {
                trace.set(at(entry.deadline), name("Deadline"), Value::Bool(true));
            }
            for port in in_ports {
                trace.set(
                    at(entry.input_freeze),
                    name(&format!("{port}_frozen_time")),
                    Value::Bool(true),
                );
            }
            for port in out_ports {
                trace.set(
                    at(entry.output_release.min(horizon - 1)),
                    name(&format!("{port}_output_time")),
                    Value::Bool(true),
                );
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::case_study::producer_consumer_instance;
    use sched::SchedulingPolicy;

    fn case_study_tasks() -> TaskSet {
        let model = producer_consumer_instance().unwrap();
        task_set_from_threads(&model.threads().unwrap()).unwrap()
    }

    #[test]
    fn task_set_extraction_matches_paper_parameters() {
        let tasks = case_study_tasks();
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks.hyperperiod(), Some(24));
        let producer = tasks.task("thProducer").unwrap();
        assert_eq!(producer.period, 4);
        assert_eq!(producer.deadline, 4);
        assert_eq!(producer.wcet, 1);
        assert_eq!(producer.priority, Some(4));
        let consumer = tasks.task("thConsumer").unwrap();
        assert_eq!(consumer.period, 6);
        assert_eq!(consumer.wcet, 2);
    }

    #[test]
    fn timing_trace_covers_every_dispatch() {
        let tasks = case_study_tasks();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        let trace = schedule_to_timing_trace(
            &schedule,
            "thProducer",
            "",
            &["pProdStart".into()],
            &["pProdStartTimer".into()],
            2,
        );
        assert_eq!(trace.len(), 48);
        let dispatch_ticks: Vec<usize> = (0..trace.len())
            .filter(|&t| {
                trace
                    .value(t, "Dispatch")
                    .map(|v| v.as_bool())
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(
            dispatch_ticks,
            vec![0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]
        );
        // Freeze times coincide with dispatches (Input_Time = Dispatch).
        for &t in &dispatch_ticks {
            assert_eq!(
                trace
                    .value(t, "pProdStart_frozen_time")
                    .map(|v| v.as_bool()),
                Some(true)
            );
        }
        // Resume (completion) happens after dispatch within the deadline.
        let resumes: Vec<usize> = (0..trace.len())
            .filter(|&t| {
                trace
                    .value(t, "Resume")
                    .map(|v| v.as_bool())
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(resumes.len(), 12);
    }

    #[test]
    fn prefixed_trace_uses_prefixed_names() {
        let tasks = case_study_tasks();
        let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic).unwrap();
        let trace = schedule_to_timing_trace(&schedule, "thConsumer", "thConsumer_", &[], &[], 1);
        assert!(trace.signals().iter().all(|s| s.starts_with("thConsumer_")));
        assert!(trace.value(0, "thConsumer_Dispatch").is_some());
    }

    #[test]
    fn scheduled_thread_model_matches_manual_flattening() {
        use crate::Translator;
        let instance = producer_consumer_instance().unwrap();
        let threads = instance.threads().unwrap();
        let translated = Translator::new().translate(&instance).unwrap();
        let producer = threads.iter().find(|t| t.name == "thProducer").unwrap();
        let model = scheduled_thread_model(&translated, producer)
            .unwrap()
            .expect("producer has a SIGNAL process");
        assert_eq!(model.thread_name, "thProducer");
        assert_eq!(model.in_ports.len(), 3);
        assert_eq!(model.out_ports.len(), 2);
        assert!(model.flat.signal("Alarm").is_some());
        let tasks = case_study_tasks();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        let trace = model.timing_trace(&schedule, 1);
        assert_eq!(trace.len(), 24);
        assert!(trace.value(0, "Dispatch").is_some());
        assert!(trace.value(0, "pProdStart_frozen_time").is_some());
    }

    #[test]
    fn aperiodic_threads_are_skipped() {
        use aadl::parse_package;
        use aadl::InstanceModel;
        let src = "package p\npublic\n  thread t\n  properties\n    Dispatch_Protocol => Aperiodic;\n  end t;\n  process w\n  end w;\n  process implementation w.impl\n  subcomponents\n    t1 : thread t;\n  end w.impl;\nend p;";
        let pkg = parse_package(src).unwrap();
        let inst = InstanceModel::instantiate(&pkg, "w.impl").unwrap();
        let tasks = task_set_from_threads(&inst.threads().unwrap()).unwrap();
        assert!(tasks.is_empty());
    }
}
