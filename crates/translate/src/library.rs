//! The AADL2SIGNAL library: reusable SIGNAL processes instantiated by the
//! translation ("An AADL2SIGNAL library provides common SIGNAL processes
//! reducing significantly the transformation complexity and cost",
//! Section IV-E).
//!
//! All library processes are *synchronous on the base tick*: every signal is
//! present at every tick of the processor clock, which is what the
//! thread-level scheduler provides. Presence of an AADL event within a tick
//! is encoded by a boolean. This keeps the processes executable by the
//! evaluator while preserving the FIFO / freeze semantics of the paper.

use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::{Process, ProcessModel};
use signal_moc::value::{Value, ValueType};

/// Name of the memory (`fm`) library process.
pub const MEMORY_PROCESS: &str = "aadl2signal_memory";
/// Name of the in event port library process.
pub const IN_EVENT_PORT_PROCESS: &str = "aadl2signal_in_event_port";
/// Name of the out event port library process.
pub const OUT_EVENT_PORT_PROCESS: &str = "aadl2signal_out_event_port";
/// Name of the shared data (`fifo_reset`) library process.
pub const SHARED_DATA_PROCESS: &str = "aadl2signal_shared_data";

/// The "memory" process `o = fm(i, b)` of Section IV-C: `o` carries the
/// current `i` when `i` is present, and the last value of `i` at the instants
/// where `b` is present and true.
pub fn memory_process() -> Process {
    let mut b = ProcessBuilder::new(MEMORY_PROCESS);
    b.input("i", ValueType::Integer);
    b.input("b", ValueType::Boolean);
    b.output("o", ValueType::Integer);
    b.define(
        "o",
        Expr::cell(Expr::var("i"), Expr::var("b"), Value::Int(0)),
    );
    b.annotate("aadl2signal::role", "memory process fm(i, b)");
    b.build().expect("library process is well-formed")
}

/// The in event port process of Fig. 5: an `in_fifo` accumulating received
/// events and a `frozen_fifo` receiving its content at each `Frozen_time`
/// event (the port's `Input_Time`).
///
/// Interface (all signals on the tick clock):
/// * `incoming` — `true` when an event arrives during this tick;
/// * `freeze` — `true` at the port's Input Time;
/// * `frozen_count` — number of events available to the thread after the
///   last freeze;
/// * `dropped` — `true` when an arrival was discarded because the `in_fifo`
///   was full (`Queue_Size` exceeded).
pub fn in_event_port_process(queue_size: usize) -> Process {
    let q = queue_size.max(1) as i64;
    let mut b = ProcessBuilder::new(IN_EVENT_PORT_PROCESS);
    b.input("incoming", ValueType::Boolean);
    b.input("freeze", ValueType::Boolean);
    b.output("frozen_count", ValueType::Integer);
    b.output("dropped", ValueType::Boolean);
    b.local("pending", ValueType::Integer);
    b.local("arrivals", ValueType::Integer);
    b.local("raw", ValueType::Integer);

    // arrivals = 1 when an event arrives this tick, else 0.
    b.define(
        "arrivals",
        Expr::default(
            Expr::when(Expr::int(1), Expr::var("incoming")),
            Expr::when(Expr::int(0), Expr::not(Expr::var("incoming"))),
        ),
    );
    // raw = previous pending + arrivals (before capping and freezing).
    b.define(
        "raw",
        Expr::add(
            Expr::delay(Expr::var("pending"), Value::Int(0)),
            Expr::var("arrivals"),
        ),
    );
    // dropped = raw exceeds the queue size.
    b.define(
        "dropped",
        Expr::Binary(
            signal_moc::expr::BinOp::Gt,
            Box::new(Expr::var("raw")),
            Box::new(Expr::int(q)),
        ),
    );
    // pending: emptied at Input Time (content moves to the frozen fifo),
    // otherwise the capped accumulation.
    b.define(
        "pending",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("freeze")),
            Expr::default(
                Expr::when(Expr::int(q), Expr::var("dropped")),
                Expr::var("raw"),
            ),
        ),
    );
    // frozen_count: refreshed at Input Time with the capped in_fifo content,
    // held otherwise.
    b.define(
        "frozen_count",
        Expr::default(
            Expr::when(
                Expr::default(
                    Expr::when(Expr::int(q), Expr::var("dropped")),
                    Expr::var("raw"),
                ),
                Expr::var("freeze"),
            ),
            Expr::delay(Expr::var("frozen_count"), Value::Int(0)),
        ),
    );
    b.synchronize(&[
        "incoming",
        "freeze",
        "pending",
        "frozen_count",
        "arrivals",
        "raw",
        "dropped",
    ]);
    b.annotate("aadl2signal::role", "in event port (in_fifo + frozen_fifo)");
    b.annotate("aadl2signal::queue_size", q.to_string());
    b.build().expect("library process is well-formed")
}

/// The out event port process: produced events are stored in a FIFO and sent
/// out at the port's Output Time.
///
/// Interface:
/// * `produced` — `true` when the thread produces an event this tick;
/// * `release` — `true` at the port's Output Time;
/// * `sent_count` — number of events released at the last Output Time;
/// * `backlog` — events still waiting in the FIFO.
pub fn out_event_port_process() -> Process {
    let mut b = ProcessBuilder::new(OUT_EVENT_PORT_PROCESS);
    b.input("produced", ValueType::Boolean);
    b.input("release", ValueType::Boolean);
    b.output("sent_count", ValueType::Integer);
    b.output("backlog", ValueType::Integer);
    b.local("additions", ValueType::Integer);
    b.local("raw", ValueType::Integer);

    b.define(
        "additions",
        Expr::default(
            Expr::when(Expr::int(1), Expr::var("produced")),
            Expr::when(Expr::int(0), Expr::not(Expr::var("produced"))),
        ),
    );
    b.define(
        "raw",
        Expr::add(
            Expr::delay(Expr::var("backlog"), Value::Int(0)),
            Expr::var("additions"),
        ),
    );
    b.define(
        "backlog",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("release")),
            Expr::var("raw"),
        ),
    );
    b.define(
        "sent_count",
        Expr::default(
            Expr::when(Expr::var("raw"), Expr::var("release")),
            Expr::when(Expr::int(0), Expr::not(Expr::var("release"))),
        ),
    );
    b.synchronize(&[
        "produced",
        "release",
        "sent_count",
        "backlog",
        "additions",
        "raw",
    ]);
    b.annotate("aadl2signal::role", "out event port");
    b.build().expect("library process is well-formed")
}

/// The shared data process of Fig. 6: a single FIFO instance (`fifo_reset`)
/// read and written by different components at different instants. Writes,
/// reads and resets are merged with `default`; the clock calculus (and the
/// scheduler) must guarantee the access clocks are mutually exclusive.
///
/// Interface:
/// * `write` — `true` when some accessor writes this tick;
/// * `read` — `true` when some accessor reads this tick;
/// * `reset` — `true` when the data is reset;
/// * `depth` — current number of items in the FIFO;
/// * `last_read` — depth observed by the most recent read.
pub fn shared_data_process() -> Process {
    let mut b = ProcessBuilder::new(SHARED_DATA_PROCESS);
    b.input("write", ValueType::Boolean);
    b.input("read", ValueType::Boolean);
    b.input("reset", ValueType::Boolean);
    b.output("depth", ValueType::Integer);
    b.output("last_read", ValueType::Integer);
    b.local("prev_depth", ValueType::Integer);
    b.local("after_write", ValueType::Integer);
    b.local("after_read", ValueType::Integer);

    b.define("prev_depth", Expr::delay(Expr::var("depth"), Value::Int(0)));
    // after_write = prev_depth + 1 when write, else prev_depth.
    b.define(
        "after_write",
        Expr::default(
            Expr::when(
                Expr::add(Expr::var("prev_depth"), Expr::int(1)),
                Expr::var("write"),
            ),
            Expr::var("prev_depth"),
        ),
    );
    // after_read = after_write - 1 when read and non-empty, else after_write.
    b.define(
        "after_read",
        Expr::default(
            Expr::when(
                Expr::sub(Expr::var("after_write"), Expr::int(1)),
                Expr::and(
                    Expr::var("read"),
                    Expr::Binary(
                        signal_moc::expr::BinOp::Gt,
                        Box::new(Expr::var("after_write")),
                        Box::new(Expr::int(0)),
                    ),
                ),
            ),
            Expr::var("after_write"),
        ),
    );
    // depth = 0 at reset, otherwise after_read.
    b.define(
        "depth",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("reset")),
            Expr::var("after_read"),
        ),
    );
    // last_read holds the depth seen by the latest read.
    b.define(
        "last_read",
        Expr::default(
            Expr::when(Expr::var("after_write"), Expr::var("read")),
            Expr::delay(Expr::var("last_read"), Value::Int(0)),
        ),
    );
    b.synchronize(&[
        "depth",
        "prev_depth",
        "last_read",
        "after_write",
        "after_read",
        "reset",
    ]);
    b.annotate("aadl2signal::role", "shared data fifo_reset");
    b.build().expect("library process is well-formed")
}

/// Builds the complete AADL2SIGNAL library as a [`ProcessModel`] fragment
/// (no root process is set; the translator merges it into the translated
/// system model).
pub fn standard_library(default_queue_size: usize) -> ProcessModel {
    let mut model = ProcessModel::new("aadl2signal_library");
    model.add(memory_process());
    model.add(in_event_port_process(default_queue_size));
    model.add(out_event_port_process());
    model.add(shared_data_process());
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::eval::Evaluator;
    use signal_moc::trace::Trace;
    use signal_moc::value::Value;

    /// Drives a library process with per-tick boolean inputs.
    fn run(process: &Process, inputs: &[(&str, Vec<bool>)]) -> Trace {
        let len = inputs.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut trace = Trace::new();
        for t in 0..len {
            for (name, values) in inputs {
                trace.set(
                    t,
                    *name,
                    Value::Bool(values.get(t).copied().unwrap_or(false)),
                );
            }
        }
        Evaluator::new(process).unwrap().run(&trace).unwrap()
    }

    fn ints(trace: &Trace, signal: &str) -> Vec<i64> {
        trace
            .flow_of(signal)
            .into_iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn memory_process_repeats_last_input() {
        let p = memory_process();
        let mut trace = Trace::new();
        trace.set(0, "i", Value::Int(5));
        trace.set(1, "b", Value::Bool(true));
        trace.set(2, "b", Value::Bool(true));
        trace.set(3, "i", Value::Int(9));
        trace.set(3, "b", Value::Bool(true));
        let out = Evaluator::new(&p).unwrap().run(&trace).unwrap();
        assert_eq!(ints(&out, "o"), vec![5, 5, 5, 9]);
    }

    #[test]
    fn in_event_port_freezes_at_input_time() {
        // Fig. 2 / Fig. 5 scenario: events arriving after the first Input
        // Time are not visible until the next Input Time.
        let p = in_event_port_process(4);
        let out = run(
            &p,
            &[
                //                 t: 0      1      2      3      4      5
                ("incoming", vec![true, false, true, true, false, false]),
                ("freeze", vec![true, false, false, false, true, false]),
            ],
        );
        let frozen = ints(&out, "frozen_count");
        // t0: arrival frozen immediately (freeze at dispatch) -> 1
        // t1-t3: frozen view unchanged (still 1) while 2 more arrive
        // t4: next Input Time -> the 2 pending arrivals become visible
        assert_eq!(frozen, vec![1, 1, 1, 1, 2, 2]);
        let pending = ints(&out, "pending");
        assert_eq!(pending, vec![0, 0, 1, 2, 0, 0]);
    }

    #[test]
    fn in_event_port_drops_when_queue_full() {
        let p = in_event_port_process(1);
        let out = run(
            &p,
            &[
                ("incoming", vec![true, true, true]),
                ("freeze", vec![false, false, true]),
            ],
        );
        let dropped: Vec<bool> = out
            .flow_of("dropped")
            .into_iter()
            .map(|v| v.as_bool())
            .collect();
        assert_eq!(dropped, vec![false, true, true]);
        // Only one event survives the 1-deep queue.
        assert_eq!(ints(&out, "frozen_count").last(), Some(&1));
    }

    #[test]
    fn out_event_port_releases_at_output_time() {
        let p = out_event_port_process();
        let out = run(
            &p,
            &[
                ("produced", vec![true, true, false, true]),
                ("release", vec![false, false, true, true]),
            ],
        );
        assert_eq!(ints(&out, "sent_count"), vec![0, 0, 2, 1]);
        assert_eq!(ints(&out, "backlog"), vec![1, 2, 0, 0]);
    }

    #[test]
    fn shared_data_tracks_depth_and_reset() {
        let p = shared_data_process();
        let out = run(
            &p,
            &[
                ("write", vec![true, false, true, false, false]),
                ("read", vec![false, true, false, false, true]),
                ("reset", vec![false, false, false, true, false]),
            ],
        );
        assert_eq!(ints(&out, "depth"), vec![1, 0, 1, 0, 0]);
        // The read at t1 observed one item; at t4 the queue was empty.
        assert_eq!(ints(&out, "last_read"), vec![0, 1, 1, 1, 0]);
    }

    #[test]
    fn shared_data_handles_write_then_read_in_one_tick() {
        // When the scheduler lets a write and a read fall in the same tick,
        // the fifo_reset process applies the write before the read, so the
        // reader observes the freshly written item.
        let p = shared_data_process();
        let out = run(
            &p,
            &[
                ("write", vec![true]),
                ("read", vec![true]),
                ("reset", vec![false]),
            ],
        );
        assert_eq!(ints(&out, "depth"), vec![0]);
        assert_eq!(ints(&out, "last_read"), vec![1]);
    }

    #[test]
    fn library_model_is_valid_and_analyzable() {
        let lib = standard_library(2);
        assert_eq!(lib.len(), 4);
        for process in lib.processes.values() {
            process.validate().unwrap();
            let report = signal_moc::analysis::StaticAnalysisReport::analyze(process).unwrap();
            assert!(report.causality_cycle.is_none(), "{}", process.name);
        }
    }
}
