//! Property-based tests of the affine clock calculus invariants.

use affine_clocks::{gcd, lcm, AffineClockSystem, AffineRelation, Synchronizability};
use proptest::prelude::*;

fn relation_strategy() -> impl Strategy<Value = AffineRelation> {
    (1u64..64, 0u64..64).prop_map(|(d, p)| AffineRelation::new(d, p).expect("positive period"))
}

proptest! {
    #[test]
    fn gcd_divides_both(a in 0u64..10_000, b in 0u64..10_000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn lcm_is_common_multiple(a in 1u64..10_000, b in 1u64..10_000) {
        let l = lcm(a, b).expect("no overflow in range");
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        // Minimality: l/a and b/gcd coincide.
        prop_assert_eq!(l, a / gcd(a, b) * b);
    }

    #[test]
    fn membership_matches_instant_enumeration(r in relation_strategy(), horizon in 1u64..512) {
        let instants = r.instants_until(horizon);
        for t in 0..horizon {
            prop_assert_eq!(r.contains(t), instants.contains(&t));
        }
        prop_assert_eq!(r.count_until(horizon) as usize, instants.len());
    }

    #[test]
    fn composition_is_extensional(a in relation_strategy(), b in relation_strategy(), k in 0u64..64) {
        let composed = a.compose(&b).expect("small coefficients");
        let via = a.instant(b.instant(k).unwrap()).unwrap();
        prop_assert_eq!(composed.instant(k), Some(via));
    }

    #[test]
    fn intersection_is_sound_and_complete(a in relation_strategy(), b in relation_strategy()) {
        let horizon = 64 * 64 + 128; // covers at least one common period plus phases
        let meet = a.intersection(&b).expect("no overflow");
        let common: Vec<u64> = (0..horizon).filter(|&t| a.contains(t) && b.contains(t)).collect();
        match meet {
            Some(m) => {
                // Every enumerated common instant is in the meet, and vice versa.
                for &t in &common {
                    prop_assert!(m.contains(t), "common instant {} missing from meet {}", t, m);
                }
                for t in m.instants_until(horizon) {
                    prop_assert!(a.contains(t) && b.contains(t));
                }
            }
            None => prop_assert!(common.is_empty(), "meet reported empty but {:?} common", common),
        }
    }

    #[test]
    fn superclock_implies_instant_inclusion(a in relation_strategy(), b in relation_strategy()) {
        if a.is_superclock_of(&b) {
            for t in b.instants_until(2048) {
                prop_assert!(a.contains(t));
            }
        }
    }

    #[test]
    fn synchronizability_verdicts_are_consistent(a in relation_strategy(), b in relation_strategy()) {
        let mut sys = AffineClockSystem::new("ref");
        sys.add_clock("a", a).unwrap();
        sys.add_clock("b", b).unwrap();
        let verdict = sys.synchronizability("a", "b").unwrap();
        let meet = a.intersection(&b).unwrap();
        match verdict {
            Synchronizability::Identical => prop_assert_eq!(a, b),
            Synchronizability::Exclusive => prop_assert!(meet.is_none()),
            _ => prop_assert!(meet.is_some()),
        }
    }
}
