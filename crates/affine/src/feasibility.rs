//! A dispatch-feasibility oracle derived from affine clock relations.
//!
//! A verified schedule export ties each thread's dispatch events to an
//! affine clock over the base tick (see the paper's step 3 and the
//! exporter in the scheduling crate). That same information answers a
//! question the state-space explorer asks millions of times: *can this
//! signal fire at instant `t` at all?* When the answer is provably no —
//! the instant is off the signal's affine clock — the explorer can skip
//! the candidate input valuation without running the evaluator.
//!
//! [`DispatchFeasibility`] packages a set of named affine relations as
//! that oracle. It is deliberately *permissive*: a signal with no recorded
//! relation may always fire, so the oracle never rules out anything it
//! does not know about.
//!
//! ```
//! use affine_clocks::{AffineRelation, DispatchFeasibility};
//!
//! let mut oracle = DispatchFeasibility::new();
//! oracle.insert("thProducer", AffineRelation::new(4, 0).unwrap());
//! assert!(oracle.may_fire("thProducer", 4));
//! assert!(!oracle.may_fire("thProducer", 5));
//! // Unknown signals are never constrained.
//! assert!(oracle.may_fire("anything_else", 5));
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::lcm;
use crate::relation::AffineRelation;

/// A permissive per-signal firing oracle: each recorded signal may fire
/// exactly on the instants of its affine relation, every other signal may
/// fire anywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchFeasibility {
    relations: BTreeMap<String, AffineRelation>,
}

impl DispatchFeasibility {
    /// An oracle with no constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Constrains `signal` to the instants of `relation` (replacing any
    /// previous constraint on the same signal).
    pub fn insert(&mut self, signal: impl Into<String>, relation: AffineRelation) {
        self.relations.insert(signal.into(), relation);
    }

    /// Whether `signal` may fire at reference instant `instant`: `true`
    /// unless a recorded relation provably excludes the instant.
    pub fn may_fire(&self, signal: &str, instant: u64) -> bool {
        match self.relations.get(signal) {
            Some(relation) => relation.contains(instant),
            None => true,
        }
    }

    /// The recorded relation of `signal`, if any.
    pub fn relation(&self, signal: &str) -> Option<&AffineRelation> {
        self.relations.get(signal)
    }

    /// Number of constrained signals.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the oracle constrains nothing (and therefore always answers
    /// `true`).
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over the constrained signals in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AffineRelation)> {
        self.relations
            .iter()
            .map(|(name, relation)| (name.as_str(), relation))
    }

    /// Least common multiple of the recorded periods — the horizon after
    /// which the oracle's answers repeat. `None` on overflow; `Some(1)`
    /// for an empty oracle.
    pub fn hyperperiod(&self) -> Option<u64> {
        self.relations
            .values()
            .try_fold(1u64, |acc, relation| lcm(acc, relation.period()))
    }

    /// A copy of the oracle with every signal name passed through `f` —
    /// used to re-key thread-level constraints into a component's signal
    /// namespace (e.g. `thProducer` into `thProducer_Dispatch`).
    pub fn renamed(&self, mut f: impl FnMut(&str) -> String) -> Self {
        Self {
            relations: self
                .relations
                .iter()
                .map(|(name, relation)| (f(name), *relation))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_signals_are_unconstrained() {
        let oracle = DispatchFeasibility::new();
        assert!(oracle.is_empty());
        assert!(oracle.may_fire("whatever", 0));
        assert!(oracle.may_fire("whatever", 17));
        assert_eq!(oracle.hyperperiod(), Some(1));
    }

    #[test]
    fn recorded_relations_gate_instants() {
        let mut oracle = DispatchFeasibility::new();
        oracle.insert("a", AffineRelation::new(4, 0).unwrap());
        oracle.insert("b", AffineRelation::new(6, 2).unwrap());
        assert_eq!(oracle.len(), 2);
        assert!(oracle.may_fire("a", 0));
        assert!(oracle.may_fire("a", 8));
        assert!(!oracle.may_fire("a", 9));
        assert!(oracle.may_fire("b", 2));
        assert!(oracle.may_fire("b", 8));
        assert!(!oracle.may_fire("b", 0));
        assert_eq!(oracle.hyperperiod(), Some(12));
        assert_eq!(
            oracle.relation("a"),
            Some(&AffineRelation::new(4, 0).unwrap())
        );
        assert_eq!(oracle.relation("zzz"), None);
    }

    #[test]
    fn renaming_re_keys_the_constraints() {
        let mut oracle = DispatchFeasibility::new();
        oracle.insert("thProducer", AffineRelation::new(4, 0).unwrap());
        let renamed = oracle.renamed(|name| format!("{name}_Dispatch"));
        assert!(renamed.may_fire("thProducer", 5)); // old key unconstrained
        assert!(!renamed.may_fire("thProducer_Dispatch", 5));
        let names: Vec<&str> = renamed.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["thProducer_Dispatch"]);
    }

    #[test]
    fn replacing_a_constraint_keeps_the_latest() {
        let mut oracle = DispatchFeasibility::new();
        oracle.insert("a", AffineRelation::new(3, 1).unwrap());
        oracle.insert("a", AffineRelation::new(5, 0).unwrap());
        assert_eq!(oracle.len(), 1);
        assert!(oracle.may_fire("a", 5));
        assert!(!oracle.may_fire("a", 1));
    }
}
