//! Systems of affine clocks over a common reference.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::lcm_all;
use crate::relation::{AffineError, AffineRelation};

/// A named clock defined by an affine relation over the system reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineClock {
    /// Name of the clock (e.g. `thProducer_dispatch`).
    pub name: String,
    /// Affine relation of this clock to the system reference clock.
    pub relation: AffineRelation,
}

impl fmt::Display for AffineClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.relation)
    }
}

/// Result of a synchronizability query between two clocks of a system.
///
/// Follows the synchronizability rules of the affine clock calculus: two
/// clocks that are affine with respect to the same reference are
/// synchronizable when their relations are compatible, and the verdict says
/// how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Synchronizability {
    /// The instant sets are identical; the clocks can be unified (`^=`).
    Identical,
    /// The first clock's instants include the second's; the second can be
    /// obtained by sub-sampling the first.
    FirstContainsSecond,
    /// The second clock's instants include the first's.
    SecondContainsFirst,
    /// The instant sets overlap but neither contains the other; the clocks
    /// can only be synchronized on their common sub-clock.
    Overlapping,
    /// The instant sets are disjoint; the clocks are mutually exclusive.
    Exclusive,
}

impl fmt::Display for Synchronizability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Synchronizability::Identical => "identical",
            Synchronizability::FirstContainsSecond => "first contains second",
            Synchronizability::SecondContainsFirst => "second contains first",
            Synchronizability::Overlapping => "overlapping",
            Synchronizability::Exclusive => "exclusive",
        };
        f.write_str(s)
    }
}

/// A set of affine clocks sharing a single discrete reference clock.
///
/// This is the structure exported by the thread-level scheduler: the
/// reference is the base simulation tick, and each scheduled event (dispatch,
/// input freeze, start, complete, output release) of each thread is a clock
/// affine to it.
///
/// ```
/// use affine_clocks::{AffineClockSystem, AffineRelation, Synchronizability};
///
/// let mut sys = AffineClockSystem::new("tick");
/// sys.add_clock("a", AffineRelation::new(2, 0)?)?;
/// sys.add_clock("b", AffineRelation::new(4, 0)?)?;
/// assert_eq!(sys.synchronizability("a", "b")?, Synchronizability::FirstContainsSecond);
/// # Ok::<(), affine_clocks::AffineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineClockSystem {
    reference: String,
    clocks: BTreeMap<String, AffineRelation>,
}

impl AffineClockSystem {
    /// Creates an empty system whose reference clock is named `reference`.
    pub fn new(reference: impl Into<String>) -> Self {
        Self {
            reference: reference.into(),
            clocks: BTreeMap::new(),
        }
    }

    /// Name of the reference clock.
    pub fn reference(&self) -> &str {
        &self.reference
    }

    /// Number of clocks (excluding the reference).
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` when no clock has been added.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Adds a clock defined by `relation` over the reference.
    ///
    /// # Errors
    ///
    /// Returns [`AffineError::DuplicateClock`] if `name` is already defined.
    pub fn add_clock(
        &mut self,
        name: impl Into<String>,
        relation: AffineRelation,
    ) -> Result<(), AffineError> {
        let name = name.into();
        if name == self.reference || self.clocks.contains_key(&name) {
            return Err(AffineError::DuplicateClock(name));
        }
        self.clocks.insert(name, relation);
        Ok(())
    }

    /// Looks up the relation of a named clock.
    pub fn relation(&self, name: &str) -> Result<AffineRelation, AffineError> {
        if name == self.reference {
            return Ok(AffineRelation::identity());
        }
        self.clocks
            .get(name)
            .copied()
            .ok_or_else(|| AffineError::UnknownClock(name.to_string()))
    }

    /// Iterates over the clocks in name order.
    pub fn iter(&self) -> impl Iterator<Item = AffineClock> + '_ {
        self.clocks.iter().map(|(name, relation)| AffineClock {
            name: name.clone(),
            relation: *relation,
        })
    }

    /// Hyper-period of the system: the least common multiple of all clock
    /// periods, i.e. the number of reference instants after which the whole
    /// pattern of instants repeats (ignoring phases).
    ///
    /// Returns `None` for an empty system or on overflow.
    pub fn hyperperiod(&self) -> Option<u64> {
        let periods: Vec<u64> = self.clocks.values().map(|r| r.period()).collect();
        lcm_all(&periods)
    }

    /// Synchronizability verdict between two clocks of the system.
    ///
    /// # Errors
    ///
    /// Returns [`AffineError::UnknownClock`] if either name is undefined.
    pub fn synchronizability(&self, a: &str, b: &str) -> Result<Synchronizability, AffineError> {
        let ra = self.relation(a)?;
        let rb = self.relation(b)?;
        if ra.is_same_clock(&rb) {
            return Ok(Synchronizability::Identical);
        }
        if ra.is_superclock_of(&rb) {
            return Ok(Synchronizability::FirstContainsSecond);
        }
        if rb.is_superclock_of(&ra) {
            return Ok(Synchronizability::SecondContainsFirst);
        }
        match ra.intersection(&rb)? {
            Some(_) => Ok(Synchronizability::Overlapping),
            None => Ok(Synchronizability::Exclusive),
        }
    }

    /// Intersection clock of two named clocks, if any.
    pub fn intersection(&self, a: &str, b: &str) -> Result<Option<AffineRelation>, AffineError> {
        let ra = self.relation(a)?;
        let rb = self.relation(b)?;
        ra.intersection(&rb)
    }

    /// Checks that every pair of clocks in `exclusive_groups` is mutually
    /// exclusive (no two clocks of a group share an instant). Used for shared
    /// data access clocks, which must guarantee a single access at a time.
    ///
    /// Returns the first offending pair if the property does not hold.
    pub fn check_mutual_exclusion(
        &self,
        group: &[&str],
    ) -> Result<Option<(String, String)>, AffineError> {
        for (i, a) in group.iter().enumerate() {
            for b in &group[i + 1..] {
                if self.intersection(a, b)?.is_some() {
                    return Ok(Some((a.to_string(), b.to_string())));
                }
            }
        }
        Ok(None)
    }

    /// Materialises the instants of every clock strictly below `horizon`
    /// reference ticks. Useful for trace generation and tests.
    pub fn instants_until(&self, horizon: u64) -> BTreeMap<String, Vec<u64>> {
        self.clocks
            .iter()
            .map(|(name, rel)| (name.clone(), rel.instants_until(horizon)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_study_system() -> AffineClockSystem {
        // Dispatch clocks of the four ProducerConsumer threads on a 1 ms tick.
        let mut sys = AffineClockSystem::new("ms");
        sys.add_clock("thProducer", AffineRelation::new(4, 0).unwrap())
            .unwrap();
        sys.add_clock("thConsumer", AffineRelation::new(6, 0).unwrap())
            .unwrap();
        sys.add_clock("thProdTimer", AffineRelation::new(8, 0).unwrap())
            .unwrap();
        sys.add_clock("thConsTimer", AffineRelation::new(8, 4).unwrap())
            .unwrap();
        sys
    }

    #[test]
    fn hyperperiod_matches_paper() {
        let sys = case_study_system();
        assert_eq!(sys.hyperperiod(), Some(24));
    }

    #[test]
    fn duplicate_clock_rejected() {
        let mut sys = case_study_system();
        let err = sys
            .add_clock("thProducer", AffineRelation::identity())
            .unwrap_err();
        assert_eq!(err, AffineError::DuplicateClock("thProducer".into()));
        let err = sys.add_clock("ms", AffineRelation::identity()).unwrap_err();
        assert_eq!(err, AffineError::DuplicateClock("ms".into()));
    }

    #[test]
    fn unknown_clock_reported() {
        let sys = case_study_system();
        assert!(matches!(
            sys.synchronizability("thProducer", "nope"),
            Err(AffineError::UnknownClock(_))
        ));
    }

    #[test]
    fn reference_is_identity() {
        let sys = case_study_system();
        assert_eq!(sys.relation("ms").unwrap(), AffineRelation::identity());
        assert_eq!(
            sys.synchronizability("ms", "thProducer").unwrap(),
            Synchronizability::FirstContainsSecond
        );
    }

    #[test]
    fn timers_with_offset_are_exclusive() {
        let sys = case_study_system();
        assert_eq!(
            sys.synchronizability("thProdTimer", "thConsTimer").unwrap(),
            Synchronizability::Exclusive
        );
        assert_eq!(
            sys.check_mutual_exclusion(&["thProdTimer", "thConsTimer"])
                .unwrap(),
            None
        );
    }

    #[test]
    fn mutual_exclusion_violation_detected() {
        let sys = case_study_system();
        let clash = sys
            .check_mutual_exclusion(&["thProducer", "thConsumer"])
            .unwrap();
        assert_eq!(
            clash,
            Some(("thProducer".to_string(), "thConsumer".to_string()))
        );
    }

    #[test]
    fn instants_until_horizon() {
        let sys = case_study_system();
        let map = sys.instants_until(24);
        assert_eq!(map["thProducer"], vec![0, 4, 8, 12, 16, 20]);
        assert_eq!(map["thConsumer"], vec![0, 6, 12, 18]);
        assert_eq!(map["thProdTimer"], vec![0, 8, 16]);
        assert_eq!(map["thConsTimer"], vec![4, 12, 20]);
    }

    #[test]
    fn overlapping_verdict() {
        let mut sys = AffineClockSystem::new("t");
        sys.add_clock("a", AffineRelation::new(4, 0).unwrap())
            .unwrap();
        sys.add_clock("b", AffineRelation::new(6, 0).unwrap())
            .unwrap();
        assert_eq!(
            sys.synchronizability("a", "b").unwrap(),
            Synchronizability::Overlapping
        );
        assert_eq!(
            sys.intersection("a", "b").unwrap(),
            Some(AffineRelation::new(12, 0).unwrap())
        );
    }
}
