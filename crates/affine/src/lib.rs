//! Affine clock relations for polychronous time-triggered systems.
//!
//! This crate implements the *affine clock calculus* used by the paper
//! "Toward Polychronous Analysis and Validation for Timed Software
//! Architectures in AADL" (DATE 2013) to express thread-level schedules as
//! clock relations, and the synchronizability rules of
//! Smarandache, Gautier and Le Guernic (FM'99) used to check them.
//!
//! The central notion is the *affine sampling relation*
//! `y = { d·t + φ | t ∈ x }` of a reference discrete time `x`:
//! `y` is a sub-sampling of `x` of strictly positive period `d` and
//! non-negative phase `φ`. The [`AffineRelation`] type captures one such
//! relation, [`AffineClock`] names a clock defined by a relation over a
//! reference, and [`AffineClockSystem`] gathers a set of clocks over a common
//! reference so that synchronizability and intersection questions can be
//! answered exactly on a hyper-period.
//!
//! # Example
//!
//! ```
//! use affine_clocks::{AffineRelation, AffineClockSystem};
//!
//! // Two periodic threads with periods 4 and 6 dispatched on a 1 ms tick.
//! let mut sys = AffineClockSystem::new("tick");
//! sys.add_clock("thProducer_dispatch", AffineRelation::new(4, 0).unwrap()).unwrap();
//! sys.add_clock("thConsumer_dispatch", AffineRelation::new(6, 0).unwrap()).unwrap();
//! // They coincide every lcm(4, 6) = 12 ticks.
//! let meet = sys.intersection("thProducer_dispatch", "thConsumer_dispatch").unwrap();
//! assert_eq!(meet, Some(AffineRelation::new(12, 0).unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feasibility;
pub mod relation;
pub mod system;

pub use feasibility::DispatchFeasibility;
pub use relation::{AffineError, AffineRelation};
pub use system::{AffineClock, AffineClockSystem, Synchronizability};

/// Greatest common divisor of two non-negative integers.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// ```
/// assert_eq!(affine_clocks::gcd(12, 18), 6);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two positive integers.
///
/// Returns `None` on overflow or when either argument is zero.
///
/// ```
/// assert_eq!(affine_clocks::lcm(4, 6), Some(12));
/// ```
pub fn lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Least common multiple of a slice of positive integers.
///
/// Returns `None` if the slice is empty, contains a zero, or the result
/// overflows `u64`.
///
/// ```
/// assert_eq!(affine_clocks::lcm_all(&[4, 6, 8, 8]), Some(24));
/// ```
pub fn lcm_all(values: &[u64]) -> Option<u64> {
    let mut it = values.iter().copied();
    let first = it.next()?;
    it.try_fold(first, lcm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(0, 6), None);
        assert_eq!(lcm(u64::MAX, 2), None);
    }

    #[test]
    fn lcm_all_case_study() {
        // Periods of the four ProducerConsumer threads: 4, 6, 8, 8 ms.
        assert_eq!(lcm_all(&[4, 6, 8, 8]), Some(24));
        assert_eq!(lcm_all(&[]), None);
        assert_eq!(lcm_all(&[5]), Some(5));
    }
}
