//! Affine sampling relations over a discrete reference clock.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{gcd, lcm};

/// Error raised when constructing or combining affine relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineError {
    /// The period `d` of an affine relation must be strictly positive.
    ZeroPeriod,
    /// Arithmetic overflow while composing relations.
    Overflow,
    /// A named clock was not found in an [`crate::AffineClockSystem`].
    UnknownClock(String),
    /// A clock with the same name was already registered.
    DuplicateClock(String),
}

impl fmt::Display for AffineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineError::ZeroPeriod => write!(f, "affine relation period must be positive"),
            AffineError::Overflow => write!(f, "arithmetic overflow in affine clock computation"),
            AffineError::UnknownClock(name) => write!(f, "unknown clock `{name}`"),
            AffineError::DuplicateClock(name) => write!(f, "clock `{name}` already defined"),
        }
    }
}

impl std::error::Error for AffineError {}

/// An affine sampling relation `y = { d·t + φ | t ∈ x }` of a reference
/// clock `x`.
///
/// The instants of `y`, expressed as indices of instants of `x`, form the
/// arithmetic progression `φ, φ + d, φ + 2d, …`. The period `d` is strictly
/// positive and the phase `φ` is non-negative, exactly as in the paper
/// (Section IV-D).
///
/// ```
/// use affine_clocks::AffineRelation;
/// let r = AffineRelation::new(4, 1)?;
/// assert!(r.contains(5));
/// assert!(!r.contains(4));
/// assert_eq!(r.instants_until(12), vec![1, 5, 9]);
/// # Ok::<(), affine_clocks::AffineError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AffineRelation {
    period: u64,
    phase: u64,
}

impl AffineRelation {
    /// Creates a new relation with period `d = period` and phase `φ = phase`.
    ///
    /// # Errors
    ///
    /// Returns [`AffineError::ZeroPeriod`] if `period == 0`.
    pub fn new(period: u64, phase: u64) -> Result<Self, AffineError> {
        if period == 0 {
            return Err(AffineError::ZeroPeriod);
        }
        Ok(Self { period, phase })
    }

    /// The identity relation: `y` has exactly the instants of the reference.
    pub fn identity() -> Self {
        Self {
            period: 1,
            phase: 0,
        }
    }

    /// Sampling period `d` (in reference instants).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Sampling phase `φ` (index of the first instant on the reference).
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Returns `true` when reference instant `t` is an instant of this clock.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.phase && (t - self.phase).is_multiple_of(self.period)
    }

    /// The `k`-th instant (0-based) of the clock, as a reference instant.
    ///
    /// Returns `None` on overflow.
    pub fn instant(&self, k: u64) -> Option<u64> {
        self.period.checked_mul(k)?.checked_add(self.phase)
    }

    /// All instants of this clock strictly below `horizon`, as reference
    /// instants (typically `horizon` is the hyper-period).
    pub fn instants_until(&self, horizon: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut t = self.phase;
        while t < horizon {
            out.push(t);
            t += self.period;
        }
        out
    }

    /// Number of instants strictly below `horizon`.
    pub fn count_until(&self, horizon: u64) -> u64 {
        if horizon <= self.phase {
            0
        } else {
            (horizon - self.phase - 1) / self.period + 1
        }
    }

    /// Composes two relations: if `y` is `self`-related to `x` and `z` is
    /// `other`-related to `y`, the result relates `z` directly to `x`.
    ///
    /// Instant `k` of `z` is instant `d2·k + φ2` of `y`, which is instant
    /// `d1·(d2·k + φ2) + φ1 = d1·d2·k + (d1·φ2 + φ1)` of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`AffineError::Overflow`] if the composed coefficients do not
    /// fit in `u64`.
    pub fn compose(&self, other: &AffineRelation) -> Result<AffineRelation, AffineError> {
        let period = self
            .period
            .checked_mul(other.period)
            .ok_or(AffineError::Overflow)?;
        let phase = self
            .period
            .checked_mul(other.phase)
            .and_then(|p| p.checked_add(self.phase))
            .ok_or(AffineError::Overflow)?;
        AffineRelation::new(period, phase)
    }

    /// Intersection of the instant sets of two relations over the same
    /// reference, if non-empty, expressed as a relation over that reference.
    ///
    /// The instant sets are arithmetic progressions; their intersection is
    /// either empty or another arithmetic progression whose period is
    /// `lcm(d1, d2)`. This is the core of the affine synchronizability rules:
    /// two clocks can be synchronized on a sub-clock iff this intersection is
    /// non-empty.
    pub fn intersection(
        &self,
        other: &AffineRelation,
    ) -> Result<Option<AffineRelation>, AffineError> {
        let g = gcd(self.period, other.period);
        // Solve  phase1 + k1*d1 = phase2 + k2*d2  (k1, k2 >= 0).
        let (lo, hi) = if self.phase <= other.phase {
            (self, other)
        } else {
            (other, self)
        };
        let diff = hi.phase - lo.phase;
        if diff % g != 0 {
            return Ok(None);
        }
        let l = lcm(self.period, other.period).ok_or(AffineError::Overflow)?;
        // Find the smallest common instant >= hi.phase by stepping the lower
        // progression; the step count is bounded by d_hi / g, so this is fast.
        let mut t = lo.phase + diff.div_ceil(lo.period) * lo.period;
        // t is the first instant of `lo` that is >= hi.phase.
        let steps = hi.period / g;
        let mut found = None;
        for _ in 0..=steps {
            if hi.contains(t) {
                found = Some(t);
                break;
            }
            t = t.checked_add(lo.period).ok_or(AffineError::Overflow)?;
        }
        match found {
            Some(phase) => Ok(Some(AffineRelation::new(l, phase)?)),
            None => Ok(None),
        }
    }

    /// Two relations are *synchronizable as equal clocks* iff they denote the
    /// same instant set: same period and same phase.
    pub fn is_same_clock(&self, other: &AffineRelation) -> bool {
        self == other
    }

    /// Returns `true` when every instant of `other` is also an instant of
    /// `self` (i.e. `other` is a sub-clock of `self`).
    pub fn is_superclock_of(&self, other: &AffineRelation) -> bool {
        other.period.is_multiple_of(self.period)
            && other.phase >= self.phase
            && (other.phase - self.phase).is_multiple_of(self.period)
    }

    /// Returns `true` when the two instant sets are disjoint (exclusive
    /// clocks), useful to check mutual-exclusion constraints on shared data.
    pub fn is_exclusive_with(&self, other: &AffineRelation) -> Result<bool, AffineError> {
        Ok(self.intersection(other)?.is_none())
    }
}

impl Default for AffineRelation {
    fn default() -> Self {
        Self::identity()
    }
}

impl fmt::Display for AffineRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}·t + {} | t ∈ ref}}", self.period, self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_period() {
        assert_eq!(AffineRelation::new(0, 3), Err(AffineError::ZeroPeriod));
    }

    #[test]
    fn identity_contains_everything() {
        let id = AffineRelation::identity();
        for t in 0..50 {
            assert!(id.contains(t));
        }
    }

    #[test]
    fn instants_and_count_agree() {
        let r = AffineRelation::new(4, 2).unwrap();
        let instants = r.instants_until(30);
        assert_eq!(instants, vec![2, 6, 10, 14, 18, 22, 26]);
        assert_eq!(r.count_until(30), instants.len() as u64);
        assert_eq!(r.count_until(2), 0);
        assert_eq!(r.count_until(3), 1);
    }

    #[test]
    fn compose_is_substitution() {
        // y = {3t + 1 | t in x}, z = {2t + 1 | t in y}
        // => z = {6t + 4 | t in x}
        let xy = AffineRelation::new(3, 1).unwrap();
        let yz = AffineRelation::new(2, 1).unwrap();
        let xz = xy.compose(&yz).unwrap();
        assert_eq!(xz, AffineRelation::new(6, 4).unwrap());
        // Check extensionally for a few instants.
        for k in 0..10u64 {
            let via_y = xy.instant(yz.instant(k).unwrap()).unwrap();
            assert_eq!(Some(via_y), xz.instant(k));
        }
    }

    #[test]
    fn intersection_periodic_threads() {
        // dispatch clocks of 4 ms and 6 ms threads on a 1 ms base tick
        let a = AffineRelation::new(4, 0).unwrap();
        let b = AffineRelation::new(6, 0).unwrap();
        assert_eq!(
            a.intersection(&b).unwrap(),
            Some(AffineRelation::new(12, 0).unwrap())
        );
    }

    #[test]
    fn intersection_with_phases() {
        let a = AffineRelation::new(4, 1).unwrap(); // 1,5,9,13,...
        let b = AffineRelation::new(6, 3).unwrap(); // 3,9,15,21,...
        assert_eq!(
            a.intersection(&b).unwrap(),
            Some(AffineRelation::new(12, 9).unwrap())
        );
    }

    #[test]
    fn intersection_empty() {
        let a = AffineRelation::new(2, 0).unwrap(); // evens
        let b = AffineRelation::new(2, 1).unwrap(); // odds
        assert_eq!(a.intersection(&b).unwrap(), None);
        assert!(a.is_exclusive_with(&b).unwrap());
    }

    #[test]
    fn superclock_check() {
        let base = AffineRelation::new(2, 0).unwrap();
        let sub = AffineRelation::new(4, 2).unwrap();
        assert!(base.is_superclock_of(&sub));
        assert!(!sub.is_superclock_of(&base));
        // Phase misaligned: 4t + 1 is not included in 2t.
        let odd = AffineRelation::new(4, 1).unwrap();
        assert!(!base.is_superclock_of(&odd));
    }

    #[test]
    fn display_is_readable() {
        let r = AffineRelation::new(4, 2).unwrap();
        assert_eq!(r.to_string(), "{4·t + 2 | t ∈ ref}");
    }
}
