//! Property tests of the `polychrony-wire-v1` codec: every frame kind must
//! survive encode → decode bit-identically, and junk must be rejected with
//! an error (never a panic, never a wrong frame).

use std::io::BufReader;

use polychrony_core::polyverify::FrontierMode;
use polychrony_core::sched::SchedulingPolicy;
use polychrony_core::{PropertySpec, SessionOptions, VcdCapture, VerificationScope};
use polyobs::ProgressUpdate;
use polywire::{read_frame, write_frame, Frame, JobSpec, JobState, JobStatus, WireReport};
use proptest::prelude::*;

/// Names with the characters most likely to break hand-rolled JSON:
/// quotes, backslashes, newlines, control bytes, non-ASCII.
fn names() -> Vec<&'static str> {
    vec![
        "sweep-0",
        "",
        "with space",
        "quo\"ted\\slash",
        "line\nbreak\ttab",
        "unicode-é-Δ-中",
        "ctrl-\u{1}-char",
    ]
}

fn roundtrip(frame: &Frame) -> Frame {
    let mut wire = Vec::new();
    write_frame(&mut wire, frame).unwrap();
    let mut reader = BufReader::new(wire.as_slice());
    let decoded = read_frame(&mut reader).unwrap().expect("one frame written");
    assert!(
        read_frame(&mut reader).unwrap().is_none(),
        "clean EOF after frame"
    );
    decoded
}

fn options_variant(
    policy: usize,
    scope: bool,
    barrier: bool,
    vcd: usize,
    n: u64,
) -> SessionOptions {
    let mut options = SessionOptions::default();
    options.schedule.policy = match policy % 3 {
        0 => SchedulingPolicy::RateMonotonic,
        1 => SchedulingPolicy::EarliestDeadlineFirst,
        _ => SchedulingPolicy::FixedPriority,
    };
    options.translate.default_queue_size = (n % 7 + 1) as usize;
    options.simulate.hyperperiods = n % 5 + 1;
    options.simulate.vcd = match vcd % 3 {
        0 => VcdCapture::First,
        1 => VcdCapture::Off,
        _ => VcdCapture::Thread(format!("thread-{n}")),
    };
    options.verify.enabled = n.is_multiple_of(2);
    options.verify.workers = (n % 4 + 1) as usize;
    options.verify.hyperperiods = n % 3 + 1;
    options.verify.scope = if scope {
        VerificationScope::Product
    } else {
        VerificationScope::PerThread
    };
    options.verify.frontier = if barrier {
        FrontierMode::Barrier
    } else {
        FrontierMode::WorkStealing
    };
    options.verify.pruning = !n.is_multiple_of(3);
    options.verify.interner_capacity = (n % 1000 + 1) as usize;
    if n % 2 == 1 {
        options.verify.properties = vec![
            PropertySpec::new("never raised(*Alarm*)"),
            PropertySpec::new(format!(
                "always (Dispatch implies Resume within {})",
                n % 9 + 1
            )),
        ];
    }
    options
}

proptest! {
    #[test]
    fn submit_frames_round_trip(
        (policy, vcd) in (0usize..3, 0usize..3),
        (scope, barrier, watch) in (any::<bool>(), any::<bool>(), any::<bool>()),
        n in 0u64..10_000,
        name in prop::sample::select(names()),
        source in prop::option::of(prop::sample::select(names())),
    ) {
        let frame = Frame::Submit {
            spec: JobSpec {
                name: name.to_string(),
                source: source.map(str::to_string),
                root: "sysProdCons.impl".to_string(),
                options: options_variant(policy, scope, barrier, vcd, n),
            },
            watch,
        };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn control_frames_round_trip(
        id in 0u64..1_000_000,
        with_id in any::<bool>(),
        state in 0usize..5,
        name in prop::sample::select(names()),
    ) {
        let state = [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ][state];
        let frames = vec![
            Frame::Status { id: with_id.then_some(id) },
            Frame::Cancel { id },
            Frame::Watch { id },
            Frame::Shutdown,
            Frame::Ack { id, state },
            Frame::Jobs {
                jobs: vec![JobStatus {
                    id,
                    name: name.to_string(),
                    state,
                    detail: format!("pass [cache: miss] {name}"),
                }],
            },
            Frame::Error { message: name.to_string() },
        ];
        for frame in frames {
            prop_assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn progress_and_result_frames_round_trip(
        id in 0u64..1_000_000,
        (depth, states, frontier) in (0u64..10_000, 0u64..100_000, 0u64..1_000),
        bound in prop::option::of(0u64..10_000),
        passed in any::<bool>(),
        name in prop::sample::select(names()),
    ) {
        let phase = Frame::Progress {
            id,
            update: ProgressUpdate::Phase { name: name.to_string() },
        };
        prop_assert_eq!(roundtrip(&phase), phase);

        let level = Frame::Progress {
            id,
            update: ProgressUpdate::Level {
                phase: name.to_string(),
                depth,
                bound,
                states,
                frontier,
            },
        };
        prop_assert_eq!(roundtrip(&level), level);

        let result = Frame::Result {
            id,
            report: WireReport {
                passed,
                cache: bound.map(|_| "frontend-hit".to_string()),
                hyperperiod: depth,
                states,
                transitions: states * 2,
                verdicts: [(name.to_string(), format!("verdict of {name}"))]
                    .into_iter()
                    .collect(),
                error: (!passed).then(|| format!("phase error: {name}")),
                wall_us: frontier,
            },
        };
        prop_assert_eq!(roundtrip(&result), result);
    }

    #[test]
    fn junk_bytes_never_decode_to_a_frame(
        len in 0u64..100,
        body in prop::sample::select(vec![
            "garbage", "{}", "{\"proto\":\"polychrony-wire-v1\"}", "[1,2,3]", "null",
            "{\"proto\":\"other\",\"kind\":\"shutdown\"}", "\u{0}\u{1}\u{2}",
        ]),
    ) {
        // A random length prefix over a random body either errors (length
        // mismatch, bad JSON, bad frame) or decodes nothing — it must never
        // produce a frame, because none of these bodies is a valid frame.
        let stream = format!("{len}\n{body}\n");
        let mut reader = BufReader::new(stream.as_bytes());
        if let Ok(Some(frame)) = read_frame(&mut reader) {
            prop_assert!(false, "junk decoded to {frame:?}");
        }
    }
}
