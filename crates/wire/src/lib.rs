//! The `polychrony-wire-v1` protocol: the frames spoken between the
//! `polychrony` CLI and the `polychronyd` verification daemon.
//!
//! The protocol is deliberately primitive — length-prefixed line JSON over
//! any byte stream (TCP or a unix socket) — so it can be driven from a
//! shell with `printf` and inspected with `cat`, and because the
//! workspace's vendored `serde` is a compile-time stand-in with no real
//! serialisation, every frame hand-encodes through [`polyobs::json`], the
//! same zero-dependency value type the trace sinks use.
//!
//! On the wire, one frame is
//!
//! ```text
//! <decimal payload length>\n
//! <payload: one JSON object>\n
//! ```
//!
//! and every payload object carries `"proto": "polychrony-wire-v1"` plus a
//! `"kind"` discriminator. Unknown *keys* are ignored (room to grow);
//! unknown *kinds* and wrong protocol versions are rejected. See
//! `docs/SERVICE.md` for the full frame reference.
//!
//! ```
//! use polywire::{read_frame, write_frame, Frame, JobState};
//!
//! let frame = Frame::Ack { id: 7, state: JobState::Queued };
//! let mut wire = Vec::new();
//! write_frame(&mut wire, &frame)?;
//! let mut reader = std::io::BufReader::new(wire.as_slice());
//! assert_eq!(read_frame(&mut reader)?, Some(frame));
//! assert_eq!(read_frame(&mut reader)?, None); // clean EOF
//! # Ok::<(), polywire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod frame;

pub use codec::{read_frame, write_frame, WireError, MAX_FRAME_LEN};
pub use frame::{
    options_from_json, options_to_json, Frame, JobSpec, JobState, JobStatus, WireReport,
};

/// Protocol identifier carried by every frame; readers reject anything else.
pub const PROTOCOL: &str = "polychrony-wire-v1";
