//! Frame and payload types of the `polychrony-wire-v1` protocol.

use std::collections::BTreeMap;
use std::fmt;

use polychrony_core::aadl::case_study::PRODUCER_CONSUMER_AADL;
use polychrony_core::polyverify::{Domain, FrontierMode};
use polychrony_core::sched::SchedulingPolicy;
use polychrony_core::{
    BatchJob, CacheOutcome, CoreError, PropertySpec, SessionOptions, ToolChainReport, VcdCapture,
    VerificationScope,
};
use polyobs::json::Json;
use polyobs::ProgressUpdate;

use crate::codec::WireError;
use crate::PROTOCOL;

/// One protocol frame, either direction. Client→server kinds: `submit`,
/// `status`, `cancel`, `watch`, `shutdown`. Server→client kinds: `ack`,
/// `jobs`, `progress`, `result`, `error`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Submit a job; with `watch` the connection stays open and receives
    /// `progress` frames followed by the final `result`.
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Stream progress and the result on this connection.
        watch: bool,
    },
    /// Ask for the status of one job (`Some(id)`) or of every job (`None`).
    Status {
        /// Job to query, or `None` for the whole table.
        id: Option<u64>,
    },
    /// Cancel a queued or running job (a running job finishes but its result
    /// is discarded; terminal jobs are unaffected).
    Cancel {
        /// Job to cancel.
        id: u64,
    },
    /// Subscribe to progress and the final result of an existing job.
    Watch {
        /// Job to watch.
        id: u64,
    },
    /// Ask the daemon to finish running jobs and exit.
    Shutdown,
    /// Acknowledges `submit`/`cancel`/`shutdown`, echoing the job state.
    Ack {
        /// Job the acknowledgement refers to (0 for `shutdown`).
        id: u64,
        /// State of that job after the request.
        state: JobState,
    },
    /// Response to `status`: one row per queried job.
    Jobs {
        /// The queried subset of the daemon's job table.
        jobs: Vec<JobStatus>,
    },
    /// One telemetry update of a running watched job, bridged from the
    /// job's collector (`phase.*` spans and `engine.level` events).
    Progress {
        /// Job the update belongs to.
        id: u64,
        /// The bridged update.
        update: ProgressUpdate,
    },
    /// Terminal frame of a watched job: the summarised report.
    Result {
        /// Job the report belongs to.
        id: u64,
        /// The summarised outcome.
        report: WireReport,
    },
    /// The daemon could not honour a request.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// A job submission: the model to verify and the options to run it with.
/// `source: None` selects the built-in ProducerConsumer case study, so a
/// property sweep does not re-send the model text with every variant.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen label, echoed in status rows and reports.
    pub name: String,
    /// AADL source text; `None` means the built-in case study.
    pub source: Option<String>,
    /// Root classifier to instantiate.
    pub root: String,
    /// Per-phase options (the collector is not on the wire — the daemon
    /// installs its own).
    pub options: SessionOptions,
}

impl JobSpec {
    /// A spec over the built-in ProducerConsumer case study.
    pub fn case_study(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            source: None,
            root: "sysProdCons.impl".to_string(),
            options: SessionOptions::default(),
        }
    }

    /// Replaces the spec's options.
    #[must_use]
    pub fn with_options(mut self, options: SessionOptions) -> Self {
        self.options = options;
        self
    }

    /// Resolves the spec into a runnable [`BatchJob`] (materialising the
    /// case-study source when `source` is `None`).
    pub fn to_batch_job(&self) -> BatchJob {
        let source = self
            .source
            .clone()
            .unwrap_or_else(|| PRODUCER_CONSUMER_AADL.to_string());
        BatchJob::new(self.name.clone(), source, self.root.clone())
            .with_options(self.options.clone())
    }
}

/// Lifecycle state of a job in the daemon's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker, phases running.
    Running,
    /// Finished with a report (which may still carry failed checks).
    Done,
    /// Finished with a phase error.
    Failed,
    /// Cancelled before completing (while queued, or mid-run with the
    /// in-flight result discarded).
    Cancelled,
}

impl JobState {
    /// The stable label used on the wire and in CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a [`JobState::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Returns `true` for the states no worker will touch again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of a `jobs` frame: the observable state of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Daemon-assigned job id.
    pub id: u64,
    /// Caller-chosen label.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// One-line detail: verdict and cache outcome for terminal jobs,
    /// empty otherwise.
    pub detail: String,
}

/// The summarised outcome of one job, compact enough for the wire: verdict
/// flags, exploration totals and the per-thread verdict texts, but not the
/// full [`ToolChainReport`] (VCD dumps alone can dwarf the model source).
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// `true` when every check of the underlying report passed.
    pub passed: bool,
    /// How the job resolved against the daemon's artifact cache
    /// (a [`CacheOutcome`] label; `None` when no cache was consulted).
    pub cache: Option<String>,
    /// Hyper-period of the synthesised schedule.
    pub hyperperiod: u64,
    /// Distinct states explored, summed over all threads.
    pub states: u64,
    /// Executed transitions, summed over all threads.
    pub transitions: u64,
    /// Per-thread verdict text (the `VerificationOutcome` summary, which
    /// pins property verdicts, counterexample depths and state counts);
    /// the joint product verdict rides under the `"(product)"` key.
    pub verdicts: BTreeMap<String, String>,
    /// The phase error, for failed jobs.
    pub error: Option<String>,
    /// Wall-clock time the job spent in its worker, in microseconds.
    pub wall_us: u64,
}

impl WireReport {
    /// Summarises a completed run.
    pub fn from_report(
        report: &ToolChainReport,
        cache: Option<CacheOutcome>,
        wall_us: u64,
    ) -> Self {
        let mut verdicts = BTreeMap::new();
        let (mut states, mut transitions) = (0u64, 0u64);
        if let Some(verification) = &report.verification {
            states = verification.total_states() as u64;
            transitions = verification.total_transitions() as u64;
            for (thread, outcome) in &verification.outcomes {
                verdicts.insert(thread.clone(), outcome.summary());
            }
            if let Some(product) = &verification.product {
                verdicts.insert("(product)".to_string(), product.summary());
            }
        }
        Self {
            passed: report.all_checks_passed(),
            cache: cache.map(|c| c.label().to_string()),
            hyperperiod: report.schedule.hyperperiod,
            states,
            transitions,
            verdicts,
            error: None,
            wall_us,
        }
    }

    /// Summarises a run that stopped with a phase error.
    pub fn from_error(error: &CoreError, cache: Option<CacheOutcome>, wall_us: u64) -> Self {
        Self {
            passed: false,
            cache: cache.map(|c| c.label().to_string()),
            hyperperiod: 0,
            states: 0,
            transitions: 0,
            verdicts: BTreeMap::new(),
            error: Some(error.to_string()),
            wall_us,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn frame_err(message: impl Into<String>) -> WireError {
    WireError::Frame(message.into())
}

fn str_field(v: &Json, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| frame_err(format!("missing or non-string field {key:?}")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| frame_err(format!("missing or non-integer field {key:?}")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, WireError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(frame_err(format!("missing or non-boolean field {key:?}"))),
    }
}

/// Encodes phase options as a JSON object with one key per option group;
/// enum-valued options use the CLI's stable labels (`edf`, `work-stealing`,
/// `per-thread`, …). The collector never crosses the wire.
pub fn options_to_json(options: &SessionOptions) -> Json {
    let policy = match options.schedule.policy {
        SchedulingPolicy::RateMonotonic => "rm",
        SchedulingPolicy::EarliestDeadlineFirst => "edf",
        SchedulingPolicy::FixedPriority => "fp",
    };
    let vcd = match &options.simulate.vcd {
        VcdCapture::First => Json::Str("first".to_string()),
        VcdCapture::Off => Json::Str("off".to_string()),
        VcdCapture::Thread(name) => obj(vec![("thread", Json::Str(name.clone()))]),
    };
    let scope = match options.verify.scope {
        VerificationScope::PerThread => "per-thread",
        VerificationScope::Product => "product",
    };
    let frontier = match options.verify.frontier {
        FrontierMode::WorkStealing => "work-stealing",
        FrontierMode::Barrier => "barrier",
    };
    let properties = Json::Arr(
        options
            .verify
            .properties
            .iter()
            .map(|p| Json::Str(p.expr.clone()))
            .collect(),
    );
    obj(vec![
        ("schedule", obj(vec![("policy", Json::Str(policy.into()))])),
        (
            "translate",
            obj(vec![(
                "default_queue_size",
                num(options.translate.default_queue_size as u64),
            )]),
        ),
        (
            "simulate",
            obj(vec![
                ("hyperperiods", num(options.simulate.hyperperiods)),
                ("vcd", vcd),
            ]),
        ),
        (
            "verify",
            obj(vec![
                ("enabled", Json::Bool(options.verify.enabled)),
                ("workers", num(options.verify.workers as u64)),
                ("hyperperiods", num(options.verify.hyperperiods)),
                ("scope", Json::Str(scope.into())),
                ("properties", properties),
                ("frontier", Json::Str(frontier.into())),
                ("pruning", Json::Bool(options.verify.pruning)),
                (
                    "interner_capacity",
                    num(options.verify.interner_capacity as u64),
                ),
                (
                    "domain",
                    Json::Str(options.verify.domain.as_str().to_string()),
                ),
                (
                    "project_counters",
                    Json::Bool(options.verify.project_counters),
                ),
                (
                    "widen_threshold",
                    num(options.verify.widen_threshold as u64),
                ),
            ]),
        ),
    ])
}

/// Decodes [`options_to_json`] output. Missing groups and keys keep their
/// defaults (a client can send `{}`); present keys must have the right
/// shape and label, so a typoed policy is an error rather than a silently
/// different run.
pub fn options_from_json(v: &Json) -> Result<SessionOptions, WireError> {
    let mut options = SessionOptions::default();
    if let Some(schedule) = v.get("schedule") {
        if let Some(policy) = schedule.get("policy") {
            options.schedule.policy = match policy.as_str() {
                Some("rm") => SchedulingPolicy::RateMonotonic,
                Some("edf") => SchedulingPolicy::EarliestDeadlineFirst,
                Some("fp") => SchedulingPolicy::FixedPriority,
                _ => return Err(frame_err(format!("unknown schedule.policy {policy}"))),
            };
        }
    }
    if let Some(translate) = v.get("translate") {
        if translate.get("default_queue_size").is_some() {
            options.translate.default_queue_size =
                u64_field(translate, "default_queue_size")? as usize;
        }
    }
    if let Some(simulate) = v.get("simulate") {
        if simulate.get("hyperperiods").is_some() {
            options.simulate.hyperperiods = u64_field(simulate, "hyperperiods")?;
        }
        if let Some(vcd) = simulate.get("vcd") {
            options.simulate.vcd = match vcd {
                Json::Str(label) if label == "first" => VcdCapture::First,
                Json::Str(label) if label == "off" => VcdCapture::Off,
                Json::Obj(_) => VcdCapture::Thread(str_field(vcd, "thread")?),
                other => return Err(frame_err(format!("unknown simulate.vcd {other}"))),
            };
        }
    }
    if let Some(verify) = v.get("verify") {
        if verify.get("enabled").is_some() {
            options.verify.enabled = bool_field(verify, "enabled")?;
        }
        if verify.get("workers").is_some() {
            options.verify.workers = u64_field(verify, "workers")? as usize;
        }
        if verify.get("hyperperiods").is_some() {
            options.verify.hyperperiods = u64_field(verify, "hyperperiods")?;
        }
        if let Some(scope) = verify.get("scope") {
            options.verify.scope = match scope.as_str() {
                Some("per-thread") => VerificationScope::PerThread,
                Some("product") => VerificationScope::Product,
                _ => return Err(frame_err(format!("unknown verify.scope {scope}"))),
            };
        }
        if let Some(properties) = verify.get("properties") {
            let items = properties
                .as_arr()
                .ok_or_else(|| frame_err("verify.properties must be an array"))?;
            options.verify.properties = items
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(PropertySpec::new)
                        .ok_or_else(|| frame_err("verify.properties entries must be strings"))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(frontier) = verify.get("frontier") {
            options.verify.frontier = match frontier.as_str() {
                Some("work-stealing") => FrontierMode::WorkStealing,
                Some("barrier") => FrontierMode::Barrier,
                _ => return Err(frame_err(format!("unknown verify.frontier {frontier}"))),
            };
        }
        if verify.get("pruning").is_some() {
            options.verify.pruning = bool_field(verify, "pruning")?;
        }
        if verify.get("interner_capacity").is_some() {
            options.verify.interner_capacity = u64_field(verify, "interner_capacity")? as usize;
        }
        if let Some(domain) = verify.get("domain") {
            options.verify.domain = domain
                .as_str()
                .and_then(Domain::parse)
                .ok_or_else(|| frame_err(format!("unknown verify.domain {domain}")))?;
        }
        if verify.get("project_counters").is_some() {
            options.verify.project_counters = bool_field(verify, "project_counters")?;
        }
        if verify.get("widen_threshold").is_some() {
            options.verify.widen_threshold = u64_field(verify, "widen_threshold")? as i64;
        }
    }
    Ok(options)
}

impl JobSpec {
    /// Encodes the spec as a JSON object (also used verbatim by the
    /// daemon's append-only job log).
    pub fn to_json(&self) -> Json {
        let source = match &self.source {
            Some(text) => Json::Str(text.clone()),
            None => Json::Null,
        };
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("source", source),
            ("root", Json::Str(self.root.clone())),
            ("options", options_to_json(&self.options)),
        ])
    }

    /// Decodes [`JobSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`WireError::Frame`] for missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let source = match v.get("source") {
            None | Some(Json::Null) => None,
            Some(Json::Str(text)) => Some(text.clone()),
            Some(other) => {
                return Err(frame_err(format!(
                    "spec.source must be string or null, got {other}"
                )))
            }
        };
        Ok(JobSpec {
            name: str_field(v, "name")?,
            source,
            root: str_field(v, "root")?,
            options: match v.get("options") {
                Some(options) => options_from_json(options)?,
                None => SessionOptions::default(),
            },
        })
    }
}

fn state_from_json(v: &Json, key: &str) -> Result<JobState, WireError> {
    let label = str_field(v, key)?;
    JobState::from_label(&label).ok_or_else(|| frame_err(format!("unknown job state {label:?}")))
}

fn status_to_json(status: &JobStatus) -> Json {
    obj(vec![
        ("id", num(status.id)),
        ("name", Json::Str(status.name.clone())),
        ("state", Json::Str(status.state.label().into())),
        ("detail", Json::Str(status.detail.clone())),
    ])
}

fn status_from_json(v: &Json) -> Result<JobStatus, WireError> {
    Ok(JobStatus {
        id: u64_field(v, "id")?,
        name: str_field(v, "name")?,
        state: state_from_json(v, "state")?,
        detail: str_field(v, "detail")?,
    })
}

impl WireReport {
    /// Encodes the report as a JSON object (also used verbatim by the
    /// daemon's append-only job log).
    pub fn to_json(&self) -> Json {
        let cache = match &self.cache {
            Some(label) => Json::Str(label.clone()),
            None => Json::Null,
        };
        let error = match &self.error {
            Some(message) => Json::Str(message.clone()),
            None => Json::Null,
        };
        let verdicts = Json::Obj(
            self.verdicts
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        obj(vec![
            ("passed", Json::Bool(self.passed)),
            ("cache", cache),
            ("hyperperiod", num(self.hyperperiod)),
            ("states", num(self.states)),
            ("transitions", num(self.transitions)),
            ("verdicts", verdicts),
            ("error", error),
            ("wall_us", num(self.wall_us)),
        ])
    }

    /// Decodes [`WireReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`WireError::Frame`] for missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        let cache = match v.get("cache") {
            None | Some(Json::Null) => None,
            Some(Json::Str(label)) => Some(label.clone()),
            Some(other) => {
                return Err(frame_err(format!(
                    "report.cache must be string or null, got {other}"
                )))
            }
        };
        let error = match v.get("error") {
            None | Some(Json::Null) => None,
            Some(Json::Str(message)) => Some(message.clone()),
            Some(other) => {
                return Err(frame_err(format!(
                    "report.error must be string or null, got {other}"
                )))
            }
        };
        let verdicts = v
            .get("verdicts")
            .and_then(Json::as_obj)
            .ok_or_else(|| frame_err("missing report.verdicts object"))?
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| frame_err("report.verdicts values must be strings"))
            })
            .collect::<Result<_, _>>()?;
        Ok(WireReport {
            passed: bool_field(v, "passed")?,
            cache,
            hyperperiod: u64_field(v, "hyperperiod")?,
            states: u64_field(v, "states")?,
            transitions: u64_field(v, "transitions")?,
            verdicts,
            error,
            wall_us: u64_field(v, "wall_us")?,
        })
    }
}

fn progress_to_json(id: u64, update: &ProgressUpdate) -> Vec<(&'static str, Json)> {
    match update {
        ProgressUpdate::Phase { name } => vec![("id", num(id)), ("phase", Json::Str(name.clone()))],
        ProgressUpdate::Level {
            phase,
            depth,
            bound,
            states,
            frontier,
        } => {
            let bound = match bound {
                Some(b) => num(*b),
                None => Json::Null,
            };
            vec![
                ("id", num(id)),
                ("phase", Json::Str(phase.clone())),
                ("depth", num(*depth)),
                ("bound", bound),
                ("states", num(*states)),
                ("frontier", num(*frontier)),
            ]
        }
    }
}

fn progress_from_json(v: &Json) -> Result<Frame, WireError> {
    let id = u64_field(v, "id")?;
    let phase = str_field(v, "phase")?;
    // A level update is distinguished by its depth; a bare phase marker
    // has none.
    let update = if v.get("depth").is_some() {
        let bound = match v.get("bound") {
            None | Some(Json::Null) => None,
            Some(b) => Some(
                b.as_u64()
                    .ok_or_else(|| frame_err("progress.bound must be an integer or null"))?,
            ),
        };
        ProgressUpdate::Level {
            phase,
            depth: u64_field(v, "depth")?,
            bound,
            states: u64_field(v, "states")?,
            frontier: u64_field(v, "frontier")?,
        }
    } else {
        ProgressUpdate::Phase { name: phase }
    };
    Ok(Frame::Progress { id, update })
}

impl Frame {
    /// The frame's `"kind"` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Submit { .. } => "submit",
            Frame::Status { .. } => "status",
            Frame::Cancel { .. } => "cancel",
            Frame::Watch { .. } => "watch",
            Frame::Shutdown => "shutdown",
            Frame::Ack { .. } => "ack",
            Frame::Jobs { .. } => "jobs",
            Frame::Progress { .. } => "progress",
            Frame::Result { .. } => "result",
            Frame::Error { .. } => "error",
        }
    }

    /// Encodes the frame as its JSON payload object (protocol marker and
    /// kind included).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("proto", Json::Str(PROTOCOL.to_string())),
            ("kind", Json::Str(self.kind().to_string())),
        ];
        match self {
            Frame::Submit { spec, watch } => {
                pairs.push(("spec", spec.to_json()));
                pairs.push(("watch", Json::Bool(*watch)));
            }
            Frame::Status { id } => {
                if let Some(id) = id {
                    pairs.push(("id", num(*id)));
                }
            }
            Frame::Cancel { id } | Frame::Watch { id } => pairs.push(("id", num(*id))),
            Frame::Shutdown => {}
            Frame::Ack { id, state } => {
                pairs.push(("id", num(*id)));
                pairs.push(("state", Json::Str(state.label().to_string())));
            }
            Frame::Jobs { jobs } => {
                pairs.push(("jobs", Json::Arr(jobs.iter().map(status_to_json).collect())));
            }
            Frame::Progress { id, update } => pairs.extend(progress_to_json(*id, update)),
            Frame::Result { id, report } => {
                pairs.push(("id", num(*id)));
                pairs.push(("report", report.to_json()));
            }
            Frame::Error { message } => pairs.push(("message", Json::Str(message.clone()))),
        }
        obj(pairs)
    }

    /// Decodes a payload object back into a frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when the `proto` marker is missing or not
    /// [`PROTOCOL`]; [`WireError::Frame`] for an unknown kind or a payload
    /// whose fields are missing or mistyped.
    pub fn from_json(v: &Json) -> Result<Self, WireError> {
        match v.get("proto").and_then(Json::as_str) {
            Some(proto) if proto == PROTOCOL => {}
            Some(proto) => {
                return Err(WireError::Protocol(format!(
                    "unsupported protocol {proto:?} (expected {PROTOCOL:?})"
                )))
            }
            None => {
                return Err(WireError::Protocol(format!(
                    "missing \"proto\" marker (expected {PROTOCOL:?})"
                )))
            }
        }
        let kind = str_field(v, "kind")?;
        match kind.as_str() {
            "submit" => Ok(Frame::Submit {
                spec: JobSpec::from_json(
                    v.get("spec")
                        .ok_or_else(|| frame_err("missing submit.spec"))?,
                )?,
                watch: bool_field(v, "watch")?,
            }),
            "status" => Ok(Frame::Status {
                id: match v.get("id") {
                    None | Some(Json::Null) => None,
                    Some(_) => Some(u64_field(v, "id")?),
                },
            }),
            "cancel" => Ok(Frame::Cancel {
                id: u64_field(v, "id")?,
            }),
            "watch" => Ok(Frame::Watch {
                id: u64_field(v, "id")?,
            }),
            "shutdown" => Ok(Frame::Shutdown),
            "ack" => Ok(Frame::Ack {
                id: u64_field(v, "id")?,
                state: state_from_json(v, "state")?,
            }),
            "jobs" => Ok(Frame::Jobs {
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| frame_err("missing jobs array"))?
                    .iter()
                    .map(status_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "progress" => progress_from_json(v),
            "result" => Ok(Frame::Result {
                id: u64_field(v, "id")?,
                report: WireReport::from_json(
                    v.get("report")
                        .ok_or_else(|| frame_err("missing result.report"))?,
                )?,
            }),
            "error" => Ok(Frame::Error {
                message: str_field(v, "message")?,
            }),
            other => Err(frame_err(format!("unknown frame kind {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_all_enum_labels() {
        let mut options = SessionOptions::default();
        options.schedule.policy = SchedulingPolicy::RateMonotonic;
        options.simulate.vcd = VcdCapture::Thread("prod".to_string());
        options.verify.scope = VerificationScope::Product;
        options.verify.frontier = FrontierMode::Barrier;
        options.verify.domain = Domain::Interval;
        options.verify.project_counters = true;
        options.verify.widen_threshold = 12;
        options.verify.properties = vec![PropertySpec::new("never raised(*Alarm*)")];
        let decoded = options_from_json(&options_to_json(&options)).unwrap();
        assert_eq!(decoded, options);
    }

    #[test]
    fn empty_options_object_decodes_to_defaults() {
        let decoded = options_from_json(&Json::Obj(Default::default())).unwrap();
        assert_eq!(decoded, SessionOptions::default());
    }

    #[test]
    fn bad_labels_are_rejected() {
        let bad = polyobs::json::parse(r#"{"schedule":{"policy":"fifo"}}"#).unwrap();
        assert!(matches!(options_from_json(&bad), Err(WireError::Frame(_))));
        let bad = polyobs::json::parse(r#"{"verify":{"frontier":"queue"}}"#).unwrap();
        assert!(matches!(options_from_json(&bad), Err(WireError::Frame(_))));
    }

    #[test]
    fn case_study_spec_resolves_to_a_runnable_job() {
        let spec = JobSpec::case_study("sweep-0");
        let job = spec.to_batch_job();
        assert_eq!(job.name, "sweep-0");
        assert_eq!(job.root, "sysProdCons.impl");
        assert!(job.source.contains("sysProdCons"));
    }

    #[test]
    fn wrong_protocol_marker_is_a_protocol_error() {
        let v =
            polyobs::json::parse(r#"{"proto":"polychrony-wire-v0","kind":"shutdown"}"#).unwrap();
        assert!(matches!(Frame::from_json(&v), Err(WireError::Protocol(_))));
        let v = polyobs::json::parse(r#"{"kind":"shutdown"}"#).unwrap();
        assert!(matches!(Frame::from_json(&v), Err(WireError::Protocol(_))));
    }

    #[test]
    fn unknown_kind_is_a_frame_error() {
        let v = polyobs::json::parse(r#"{"proto":"polychrony-wire-v1","kind":"reboot"}"#).unwrap();
        assert!(matches!(Frame::from_json(&v), Err(WireError::Frame(_))));
    }
}
