//! Length-prefixed framing: `<decimal payload length>\n<payload>\n`.

use std::fmt;
use std::io::{BufRead, Write};

use polyobs::json;

use crate::frame::Frame;

/// Upper bound on one frame's payload, in bytes. Generous for AADL models
/// (the case study is a few KiB) while keeping a corrupt or hostile length
/// prefix from looking like a multi-gigabyte allocation request.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A protocol failure while reading or writing frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes were not a well-formed frame (bad length prefix, bad
    /// JSON, missing or mistyped fields, unknown kind).
    Frame(String),
    /// The frame was well-formed but from a different protocol version.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Frame(m) => write!(f, "malformed frame: {m}"),
            WireError::Protocol(m) => write!(f, "protocol mismatch: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame and flushes the stream (frames are request/response
/// units; buffering across them would deadlock both sides).
///
/// # Errors
///
/// [`WireError::Io`] when the stream fails.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let payload = frame.to_json().to_string();
    write!(w, "{}\n{}\n", payload.len(), payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// before the first byte of a length prefix); EOF anywhere inside a frame
/// is an error, as are oversize lengths, malformed JSON and foreign
/// protocol markers.
///
/// # Errors
///
/// [`WireError::Io`] for stream failures and truncated frames,
/// [`WireError::Frame`] / [`WireError::Protocol`] for malformed payloads.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut prefix = String::new();
    if r.read_line(&mut prefix)? == 0 {
        return Ok(None);
    }
    let len: usize = prefix
        .trim()
        .parse()
        .map_err(|_| WireError::Frame(format!("invalid length prefix {:?}", prefix.trim())))?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Frame(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut newline = [0u8; 1];
    r.read_exact(&mut newline)?;
    if newline[0] != b'\n' {
        return Err(WireError::Frame(
            "payload not followed by a newline (length prefix out of sync)".to_string(),
        ));
    }
    let payload = String::from_utf8(payload)
        .map_err(|_| WireError::Frame("payload is not valid UTF-8".to_string()))?;
    let value = json::parse(&payload).map_err(|e| WireError::Frame(e.to_string()))?;
    Frame::from_json(&value).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{JobSpec, JobState, JobStatus, WireReport};
    use std::io::BufReader;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut reader).unwrap(), Some(frame));
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frames_survive_the_wire() {
        roundtrip(Frame::Submit {
            spec: JobSpec::case_study("sweep \"quoted\"\nname"),
            watch: true,
        });
        roundtrip(Frame::Status { id: None });
        roundtrip(Frame::Status { id: Some(3) });
        roundtrip(Frame::Cancel { id: 9 });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Jobs {
            jobs: vec![JobStatus {
                id: 1,
                name: "a".into(),
                state: JobState::Running,
                detail: String::new(),
            }],
        });
        roundtrip(Frame::Error {
            message: "no such job".into(),
        });
    }

    #[test]
    fn consecutive_frames_share_one_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Cancel { id: 1 }).unwrap();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Some(Frame::Cancel { id: 1 })
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Some(Frame::Shutdown));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn junk_streams_are_rejected_not_panicked_on() {
        let junk: &[(&str, &str)] = &[
            ("not a length", "x\n{}\n"),
            ("oversize length", "999999999999\n"),
            ("truncated payload", "10\n{}"),
            ("bad json", "6\n{\"a\":\n"),
            ("payload/prefix desync", "2\n{}X"),
        ];
        for (label, bytes) in junk {
            let mut reader = BufReader::new(bytes.as_bytes());
            assert!(read_frame(&mut reader).is_err(), "{label} must error");
        }
    }

    #[test]
    fn a_result_frame_round_trips_with_its_report() {
        let report = WireReport {
            passed: true,
            cache: Some("simulated-hit".into()),
            hyperperiod: 24,
            states: 100,
            transitions: 240,
            verdicts: [("prod".to_string(), "no violation".to_string())]
                .into_iter()
                .collect(),
            error: None,
            wall_us: 4_413,
        };
        roundtrip(Frame::Result { id: 2, report });
    }
}
