//! Typed interpretation of the AADL timing properties used by the
//! input-compute-output execution model.

use serde::{Deserialize, Serialize};

use crate::ast::{PropertyAssociation, PropertyValue};
use crate::error::AadlError;

/// Time units accepted in AADL property values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeUnit {
    /// Picoseconds.
    Ps,
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// Seconds.
    Sec,
    /// Minutes.
    Min,
    /// Hours.
    Hr,
}

impl TimeUnit {
    /// Parses an AADL unit identifier.
    pub fn parse(text: &str) -> Option<TimeUnit> {
        match text.to_ascii_lowercase().as_str() {
            "ps" => Some(TimeUnit::Ps),
            "ns" => Some(TimeUnit::Ns),
            "us" => Some(TimeUnit::Us),
            "ms" => Some(TimeUnit::Ms),
            "sec" | "s" => Some(TimeUnit::Sec),
            "min" => Some(TimeUnit::Min),
            "hr" | "h" => Some(TimeUnit::Hr),
            _ => None,
        }
    }

    /// Number of nanoseconds in one unit (picoseconds round to zero).
    pub fn nanoseconds(self) -> u64 {
        match self {
            TimeUnit::Ps => 0,
            TimeUnit::Ns => 1,
            TimeUnit::Us => 1_000,
            TimeUnit::Ms => 1_000_000,
            TimeUnit::Sec => 1_000_000_000,
            TimeUnit::Min => 60_000_000_000,
            TimeUnit::Hr => 3_600_000_000_000,
        }
    }
}

/// A duration extracted from an AADL property, stored in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Creates a duration from a count of nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a duration from a count of microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from a count of milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Microseconds in this duration (truncating).
    pub fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub fn as_millis(self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Returns `true` for a zero duration.
    pub fn is_zero(self) -> bool {
        self.nanos == 0
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.nanos.is_multiple_of(1_000_000) {
            write!(f, "{} ms", self.nanos / 1_000_000)
        } else if self.nanos.is_multiple_of(1_000) {
            write!(f, "{} us", self.nanos / 1_000)
        } else {
            write!(f, "{} ns", self.nanos)
        }
    }
}

/// The `Dispatch_Protocol` of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DispatchProtocol {
    /// Dispatched every `Period`.
    #[default]
    Periodic,
    /// Dispatched by event arrival, with a minimum inter-arrival time.
    Sporadic,
    /// Dispatched by event arrival.
    Aperiodic,
    /// Dispatched periodically but preemptable by all others.
    Background,
    /// Dispatched according to a user-defined protocol (kept as text).
    Timed,
    /// Hybrid: both periodic and event-driven.
    Hybrid,
}

impl DispatchProtocol {
    /// Parses the enumeration literal.
    pub fn parse(text: &str) -> Option<DispatchProtocol> {
        match text.to_ascii_lowercase().as_str() {
            "periodic" => Some(DispatchProtocol::Periodic),
            "sporadic" => Some(DispatchProtocol::Sporadic),
            "aperiodic" => Some(DispatchProtocol::Aperiodic),
            "background" => Some(DispatchProtocol::Background),
            "timed" => Some(DispatchProtocol::Timed),
            "hybrid" => Some(DispatchProtocol::Hybrid),
            _ => None,
        }
    }
}

/// The `Input_Time` / `Output_Time` specification of a port: at which event
/// of the thread execution the port content is frozen (inputs) or made
/// available (outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoTimeSpec {
    /// At dispatch time (the default for `Input_Time`).
    Dispatch,
    /// At start of execution.
    Start,
    /// At completion time (the default `Output_Time` for immediate
    /// connections).
    Completion,
    /// At the deadline (the default `Output_Time` for delayed connections).
    Deadline,
    /// Explicitly never.
    NoIo,
}

impl IoTimeSpec {
    /// Parses the enumeration literal.
    pub fn parse(text: &str) -> Option<IoTimeSpec> {
        match text.to_ascii_lowercase().as_str() {
            "dispatch" => Some(IoTimeSpec::Dispatch),
            "start" => Some(IoTimeSpec::Start),
            "completion" => Some(IoTimeSpec::Completion),
            "deadline" => Some(IoTimeSpec::Deadline),
            "noio" => Some(IoTimeSpec::NoIo),
            _ => None,
        }
    }
}

/// The timing contract of a thread, assembled from its property
/// associations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTiming {
    /// Dispatch protocol (default `Periodic`).
    pub dispatch_protocol: DispatchProtocol,
    /// Dispatch period, if specified.
    pub period: Option<Duration>,
    /// Deadline; defaults to the period when not specified.
    pub deadline: Option<Duration>,
    /// Best-case execution time, if specified.
    pub execution_time_min: Option<Duration>,
    /// Worst-case execution time, if specified.
    pub execution_time_max: Option<Duration>,
    /// Input freeze time (default: dispatch).
    pub input_time: IoTimeSpec,
    /// Output release time (default: completion).
    pub output_time: IoTimeSpec,
    /// Scheduling priority, if specified.
    pub priority: Option<i64>,
    /// Dispatch offset, if specified.
    pub dispatch_offset: Option<Duration>,
}

impl Default for ThreadTiming {
    fn default() -> Self {
        Self {
            dispatch_protocol: DispatchProtocol::Periodic,
            period: None,
            deadline: None,
            execution_time_min: None,
            execution_time_max: None,
            input_time: IoTimeSpec::Dispatch,
            output_time: IoTimeSpec::Completion,
            priority: None,
            dispatch_offset: None,
        }
    }
}

impl ThreadTiming {
    /// Extracts the timing contract from a list of property associations
    /// (ignoring associations that carry `applies to` clauses, which target
    /// subcomponents).
    ///
    /// # Errors
    ///
    /// Returns [`AadlError::Property`] when a known timing property has a
    /// value of the wrong shape (e.g. a period without a time unit).
    pub fn from_properties(properties: &[PropertyAssociation]) -> Result<Self, AadlError> {
        let mut timing = ThreadTiming::default();
        for pa in properties {
            if !pa.applies_to.is_empty() {
                continue;
            }
            timing.apply(pa)?;
        }
        Ok(timing)
    }

    /// Applies a single property association to the timing contract.
    ///
    /// # Errors
    ///
    /// Returns [`AadlError::Property`] when the value has the wrong shape.
    pub fn apply(&mut self, pa: &PropertyAssociation) -> Result<(), AadlError> {
        match pa.name.to_ascii_lowercase().as_str() {
            "dispatch_protocol" => {
                let text = pa
                    .value
                    .as_ident()
                    .ok_or_else(|| property_error(pa, "expected an enumeration literal"))?;
                self.dispatch_protocol = DispatchProtocol::parse(text)
                    .ok_or_else(|| property_error(pa, "unknown dispatch protocol"))?;
            }
            "period" => self.period = Some(duration_value(pa)?),
            "deadline" => self.deadline = Some(duration_value(pa)?),
            "dispatch_offset" => self.dispatch_offset = Some(duration_value(pa)?),
            "compute_execution_time" => {
                let (min, max) = duration_range(pa)?;
                self.execution_time_min = Some(min);
                self.execution_time_max = Some(max);
            }
            "input_time" => {
                self.input_time = io_time_spec(pa)?;
            }
            "output_time" => {
                self.output_time = io_time_spec(pa)?;
            }
            "priority" => {
                self.priority = Some(
                    pa.value
                        .as_integer()
                        .ok_or_else(|| property_error(pa, "expected an integer"))?,
                );
            }
            _ => {}
        }
        Ok(())
    }

    /// Effective deadline: the declared deadline, or the period.
    pub fn effective_deadline(&self) -> Option<Duration> {
        self.deadline.or(self.period)
    }

    /// Effective worst-case execution time: the declared maximum, or zero.
    pub fn effective_wcet(&self) -> Duration {
        self.execution_time_max.unwrap_or_default()
    }
}

fn property_error(pa: &PropertyAssociation, message: &str) -> AadlError {
    AadlError::Property {
        name: pa.qualified_name.clone(),
        message: message.to_string(),
    }
}

/// Extracts a [`Duration`] from a property value like `4 ms`.
pub fn duration_of(value: &PropertyValue) -> Option<Duration> {
    match value {
        PropertyValue::Integer(v, unit) => {
            let unit = unit
                .as_deref()
                .and_then(TimeUnit::parse)
                .unwrap_or(TimeUnit::Ms);
            let v = u64::try_from(*v).ok()?;
            Some(Duration::from_nanos(v * unit.nanoseconds()))
        }
        PropertyValue::Real(v, unit) => {
            if *v < 0.0 {
                return None;
            }
            let unit = unit
                .as_deref()
                .and_then(TimeUnit::parse)
                .unwrap_or(TimeUnit::Ms);
            Some(Duration::from_nanos(
                (*v * unit.nanoseconds() as f64) as u64,
            ))
        }
        _ => None,
    }
}

fn duration_value(pa: &PropertyAssociation) -> Result<Duration, AadlError> {
    duration_of(&pa.value).ok_or_else(|| property_error(pa, "expected a time value"))
}

fn duration_range(pa: &PropertyAssociation) -> Result<(Duration, Duration), AadlError> {
    match &pa.value {
        PropertyValue::Range(lo, hi) => {
            let lo = duration_of(lo).ok_or_else(|| property_error(pa, "expected a time range"))?;
            let hi = duration_of(hi).ok_or_else(|| property_error(pa, "expected a time range"))?;
            Ok((lo, hi))
        }
        other => {
            let d =
                duration_of(other).ok_or_else(|| property_error(pa, "expected a time range"))?;
            Ok((d, d))
        }
    }
}

fn io_time_spec(pa: &PropertyAssociation) -> Result<IoTimeSpec, AadlError> {
    // Accepts either a bare literal or the record form `(Time => Start; …)`
    // reduced to its first identifier.
    match &pa.value {
        PropertyValue::Ident(text) => {
            IoTimeSpec::parse(text).ok_or_else(|| property_error(pa, "unknown IO time"))
        }
        PropertyValue::List(items) => items
            .iter()
            .find_map(|v| v.as_ident().and_then(IoTimeSpec::parse))
            .ok_or_else(|| property_error(pa, "unknown IO time")),
        _ => Err(property_error(pa, "expected an IO time specification")),
    }
}

/// Extracts the `Queue_Size` of a feature (default 1 per the standard and
/// the paper).
pub fn queue_size(properties: &[PropertyAssociation]) -> usize {
    properties
        .iter()
        .find(|pa| pa.name.eq_ignore_ascii_case("queue_size"))
        .and_then(|pa| pa.value.as_integer())
        .and_then(|v| usize::try_from(v).ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PropertyAssociation;

    fn pa(name: &str, value: PropertyValue) -> PropertyAssociation {
        PropertyAssociation::new(name, value)
    }

    #[test]
    fn units_convert_to_nanoseconds() {
        assert_eq!(TimeUnit::parse("MS"), Some(TimeUnit::Ms));
        assert_eq!(TimeUnit::Ms.nanoseconds(), 1_000_000);
        assert_eq!(TimeUnit::Sec.nanoseconds(), 1_000_000_000);
        assert_eq!(TimeUnit::parse("fortnight"), None);
    }

    #[test]
    fn duration_display_and_accessors() {
        let d = Duration::from_millis(4);
        assert_eq!(d.as_millis(), 4);
        assert_eq!(d.as_micros(), 4000);
        assert_eq!(d.to_string(), "4 ms");
        assert_eq!(Duration::from_micros(3).to_string(), "3 us");
        assert_eq!(Duration::from_nanos(7).to_string(), "7 ns");
        assert!(Duration::default().is_zero());
    }

    #[test]
    fn thread_timing_from_properties() {
        let props = vec![
            pa("Dispatch_Protocol", PropertyValue::Ident("Periodic".into())),
            pa("Period", PropertyValue::Integer(4, Some("ms".into()))),
            pa("Deadline", PropertyValue::Integer(4, Some("ms".into()))),
            pa(
                "Compute_Execution_Time",
                PropertyValue::Range(
                    Box::new(PropertyValue::Integer(1, Some("ms".into()))),
                    Box::new(PropertyValue::Integer(2, Some("ms".into()))),
                ),
            ),
            pa("Priority", PropertyValue::Integer(5, None)),
            pa("Input_Time", PropertyValue::Ident("Dispatch".into())),
            pa("Output_Time", PropertyValue::Ident("Completion".into())),
        ];
        let timing = ThreadTiming::from_properties(&props).unwrap();
        assert_eq!(timing.dispatch_protocol, DispatchProtocol::Periodic);
        assert_eq!(timing.period, Some(Duration::from_millis(4)));
        assert_eq!(timing.effective_deadline(), Some(Duration::from_millis(4)));
        assert_eq!(timing.execution_time_min, Some(Duration::from_millis(1)));
        assert_eq!(timing.effective_wcet(), Duration::from_millis(2));
        assert_eq!(timing.priority, Some(5));
        assert_eq!(timing.input_time, IoTimeSpec::Dispatch);
        assert_eq!(timing.output_time, IoTimeSpec::Completion);
    }

    #[test]
    fn deadline_defaults_to_period() {
        let props = vec![pa("Period", PropertyValue::Integer(10, Some("ms".into())))];
        let timing = ThreadTiming::from_properties(&props).unwrap();
        assert_eq!(timing.deadline, None);
        assert_eq!(timing.effective_deadline(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn applies_to_associations_are_skipped() {
        let mut binding = pa("Period", PropertyValue::Integer(99, Some("ms".into())));
        binding.applies_to = vec![vec!["tx".into()]];
        let timing = ThreadTiming::from_properties(&[binding]).unwrap();
        assert_eq!(timing.period, None);
    }

    #[test]
    fn invalid_values_are_rejected() {
        let bad = pa("Period", PropertyValue::Str("soon".into()));
        assert!(matches!(
            ThreadTiming::from_properties(&[bad]),
            Err(AadlError::Property { .. })
        ));
        let bad = pa("Dispatch_Protocol", PropertyValue::Ident("Random".into()));
        assert!(ThreadTiming::from_properties(&[bad]).is_err());
    }

    #[test]
    fn unknown_properties_are_ignored() {
        let props = vec![pa("Source_Text", PropertyValue::Str("x.c".into()))];
        let timing = ThreadTiming::from_properties(&props).unwrap();
        assert_eq!(timing, ThreadTiming::default());
    }

    #[test]
    fn queue_size_defaults_to_one() {
        assert_eq!(queue_size(&[]), 1);
        assert_eq!(
            queue_size(&[pa("Queue_Size", PropertyValue::Integer(3, None))]),
            3
        );
    }

    #[test]
    fn scalar_execution_time_accepted() {
        let props = vec![pa(
            "Compute_Execution_Time",
            PropertyValue::Integer(2, Some("ms".into())),
        )];
        let timing = ThreadTiming::from_properties(&props).unwrap();
        assert_eq!(timing.execution_time_min, timing.execution_time_max);
    }

    #[test]
    fn io_time_parse() {
        assert_eq!(IoTimeSpec::parse("start"), Some(IoTimeSpec::Start));
        assert_eq!(IoTimeSpec::parse("NoIO"), Some(IoTimeSpec::NoIo));
        assert_eq!(IoTimeSpec::parse("sometime"), None);
        assert_eq!(
            DispatchProtocol::parse("background"),
            Some(DispatchProtocol::Background)
        );
    }
}
