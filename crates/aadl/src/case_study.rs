//! The ProducerConsumer tutorial avionic case study of the paper,
//! reconstructed in AADL surface syntax from Section II, Figs. 1–6 and the
//! parameters given in Section V (thread periods 4, 6, 8 and 8 ms).
//!
//! The model contains the `sysProdCons` system with the environment and
//! operator-display subsystems, the `prProdCons` process with its four
//! threads (`thProducer`, `thConsumer`, `thProdTimer`, `thConsTimer`), the
//! shared data `Queue`, the timer start/stop/timeout event ports, and the
//! binding of `prProdCons` to `Processor1`.

use crate::ast::Package;
use crate::error::AadlError;
use crate::instance::InstanceModel;
use crate::parser::parse_package;

/// AADL source text of the ProducerConsumer case study.
pub const PRODUCER_CONSUMER_AADL: &str = r#"
-- ProducerConsumer tutorial avionic case study (C-S Toulouse / OPEES),
-- reconstructed from the DATE 2013 paper.
package ProducerConsumer
public

  data Message
  end Message;

  data Queue
  end Queue;

  -- Environment subsystem: produces raw values consumed by the producer.
  system sysEnv
  features
    pEnvData : out event data port Message;
    pEnvCtrl : in event port;
  end sysEnv;

  -- Operator display subsystem: informed when a timeout occurred.
  system sysOperatorDisplay
  features
    pProdTimeout : in event port;
    pConsTimeout : in event port;
  end sysOperatorDisplay;

  -- Producer thread: produces shared data in Queue.
  thread thProducer
  features
    pProdStart : in event port;
    pEnvData : in event data port Message;
    pProdStartTimer : out event port;
    pProdStopTimer : out event port;
    pTimeOut : in event port;
    QueueAccess : requires data access Queue;
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Deadline => 4 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Priority => 4;
  end thProducer;

  -- Consumer thread: consumes shared data from Queue.
  thread thConsumer
  features
    pConsStart : in event port;
    pConsData : out event data port Message;
    pConsStartTimer : out event port;
    pConsStopTimer : out event port;
    pTimeOut : in event port;
    QueueAccess : requires data access Queue;
  properties
    Dispatch_Protocol => Periodic;
    Period => 6 ms;
    Deadline => 6 ms;
    Compute_Execution_Time => 1 ms .. 2 ms;
    Priority => 3;
  end thConsumer;

  -- Timer thread managing timer services for the producer.
  thread thProdTimer
  features
    pStartTimer : in event port;
    pStopTimer : in event port;
    pTimeOut : out event port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Deadline => 8 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Priority => 2;
  end thProdTimer;

  -- Timer thread managing timer services for the consumer.
  thread thConsTimer
  features
    pStartTimer : in event port;
    pStopTimer : in event port;
    pTimeOut : out event port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Deadline => 8 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Priority => 1;
  end thConsTimer;

  process prProdCons
  features
    pEnvData : in event data port Message;
    pProdTimeout : out event port;
    pConsTimeout : out event port;
    pConsData : out event data port Message;
  end prProdCons;

  process implementation prProdCons.impl
  subcomponents
    thProducer : thread thProducer;
    thConsumer : thread thConsumer;
    thProdTimer : thread thProdTimer;
    thConsTimer : thread thConsTimer;
    Queue : data Queue;
  connections
    cEnvData : port pEnvData -> thProducer.pEnvData;
    cProdStartTimer : port thProducer.pProdStartTimer -> thProdTimer.pStartTimer;
    cProdStopTimer : port thProducer.pProdStopTimer -> thProdTimer.pStopTimer;
    cProdTimeout : port thProdTimer.pTimeOut -> thProducer.pTimeOut;
    cConsStartTimer : port thConsumer.pConsStartTimer -> thConsTimer.pStartTimer;
    cConsStopTimer : port thConsumer.pConsStopTimer -> thConsTimer.pStopTimer;
    cConsTimeout : port thConsTimer.pTimeOut -> thConsumer.pTimeOut;
    cProdAlarm : port thProdTimer.pTimeOut -> pProdTimeout;
    cConsAlarm : port thConsTimer.pTimeOut -> pConsTimeout;
    cConsData : port thConsumer.pConsData -> pConsData;
    aProdQueue : data access Queue <-> thProducer.QueueAccess;
    aConsQueue : data access Queue <-> thConsumer.QueueAccess;
  end prProdCons.impl;

  processor Processor1
  properties
    Clock_Period => 1 ms;
  end Processor1;

  system sysProdCons
  end sysProdCons;

  system implementation sysProdCons.impl
  subcomponents
    sysEnv : system sysEnv;
    sysOperatorDisplay : system sysOperatorDisplay;
    prProdCons : process prProdCons.impl;
    Processor1 : processor Processor1;
  connections
    cEnv : port sysEnv.pEnvData -> prProdCons.pEnvData;
    cProdTimeout : port prProdCons.pProdTimeout -> sysOperatorDisplay.pProdTimeout;
    cConsTimeout : port prProdCons.pConsTimeout -> sysOperatorDisplay.pConsTimeout;
  properties
    Actual_Processor_Binding => (reference (Processor1)) applies to prProdCons;
  end sysProdCons.impl;

end ProducerConsumer;
"#;

/// Parses the case-study package.
///
/// # Errors
///
/// Returns a parse error only if the embedded source is corrupted, which the
/// test suite guards against.
pub fn producer_consumer_package() -> Result<Package, AadlError> {
    parse_package(PRODUCER_CONSUMER_AADL)
}

/// Parses and instantiates the case study from its root system
/// implementation `sysProdCons.impl`.
///
/// # Errors
///
/// Same conditions as [`producer_consumer_package`] plus instantiation
/// errors.
pub fn producer_consumer_instance() -> Result<InstanceModel, AadlError> {
    let package = producer_consumer_package()?;
    InstanceModel::instantiate(&package, "sysProdCons.impl")
}

/// The periods (in milliseconds) of the four case-study threads, as reported
/// in Section V-C of the paper.
pub const CASE_STUDY_PERIODS_MS: [u64; 4] = [4, 6, 8, 8];

/// The hyper-period (in milliseconds) of the case-study thread set.
pub const CASE_STUDY_HYPERPERIOD_MS: u64 = 24;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ComponentCategory;
    use crate::properties::Duration;

    #[test]
    fn case_study_parses() {
        let pkg = producer_consumer_package().unwrap();
        assert_eq!(pkg.name, "ProducerConsumer");
        assert!(pkg.classifier("thProducer").is_some());
        assert!(pkg.classifier("prProdCons.impl").is_some());
        assert!(pkg.classifier("sysProdCons.impl").is_some());
    }

    #[test]
    fn case_study_instantiates_with_expected_structure() {
        let model = producer_consumer_instance().unwrap();
        let counts = model.category_counts();
        assert_eq!(counts[&ComponentCategory::Thread], 4);
        assert_eq!(counts[&ComponentCategory::Process], 1);
        assert_eq!(counts[&ComponentCategory::Processor], 1);
        assert_eq!(counts[&ComponentCategory::System], 3); // root + 2 subsystems
        assert_eq!(counts[&ComponentCategory::Data], 1);
    }

    #[test]
    fn thread_periods_match_the_paper() {
        let model = producer_consumer_instance().unwrap();
        let threads = model.threads().unwrap();
        assert_eq!(threads.len(), 4);
        let period = |name: &str| {
            threads
                .iter()
                .find(|t| t.name == name)
                .unwrap()
                .timing
                .period
                .unwrap()
        };
        assert_eq!(period("thProducer"), Duration::from_millis(4));
        assert_eq!(period("thConsumer"), Duration::from_millis(6));
        assert_eq!(period("thProdTimer"), Duration::from_millis(8));
        assert_eq!(period("thConsTimer"), Duration::from_millis(8));
    }

    #[test]
    fn queue_is_shared_by_producer_and_consumer() {
        let model = producer_consumer_instance().unwrap();
        let data = model.data_components();
        assert_eq!(data.len(), 1);
        let accessors = model.data_accessors(&data[0].path);
        assert_eq!(accessors.len(), 2);
        assert!(accessors.iter().any(|p| p.ends_with("thProducer")));
        assert!(accessors.iter().any(|p| p.ends_with("thConsumer")));
    }

    #[test]
    fn process_is_bound_to_processor1() {
        let model = producer_consumer_instance().unwrap();
        assert_eq!(
            model.processor_binding("sysProdCons.prProdCons"),
            Some("sysProdCons.Processor1")
        );
        // The binding covers the contained threads.
        assert_eq!(
            model.processor_binding("sysProdCons.prProdCons.thProducer"),
            Some("sysProdCons.Processor1")
        );
    }

    #[test]
    fn timer_connections_are_present() {
        let model = producer_consumer_instance().unwrap();
        let timer_conns = model
            .connections
            .iter()
            .filter(|c| c.destination_feature == "pStartTimer" || c.source_feature == "pTimeOut")
            .count();
        assert!(timer_conns >= 4, "expected timer wiring, got {timer_conns}");
    }
}
