//! Error type for the AADL front end.

use std::fmt;

/// Errors reported while lexing, parsing, resolving or instantiating AADL
/// models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AadlError {
    /// A lexical error: unexpected character.
    Lex {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// 1-based line number of the offending token.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A reference to a classifier that is not declared in the package.
    UnknownClassifier(String),
    /// A reference to a subcomponent or feature that does not exist.
    UnknownReference(String),
    /// A property value has the wrong shape for its well-known property name.
    Property {
        /// Property name.
        name: String,
        /// Description of the problem.
        message: String,
    },
    /// The instance model is inconsistent (e.g. a process bound to a
    /// component that is not a processor).
    Instantiation(String),
}

impl AadlError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        AadlError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AadlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AadlError::Lex { line, message } => {
                write!(f, "lexical error at line {line}: {message}")
            }
            AadlError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            AadlError::UnknownClassifier(name) => write!(f, "unknown classifier `{name}`"),
            AadlError::UnknownReference(name) => write!(f, "unknown reference `{name}`"),
            AadlError::Property { name, message } => {
                write!(f, "invalid value for property `{name}`: {message}")
            }
            AadlError::Instantiation(message) => write!(f, "instantiation error: {message}"),
        }
    }
}

impl std::error::Error for AadlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let err = AadlError::parse(12, "expected `;`");
        assert_eq!(err.to_string(), "parse error at line 12: expected `;`");
        let err = AadlError::Lex {
            line: 3,
            message: "unexpected `@`".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn display_other_variants() {
        assert!(AadlError::UnknownClassifier("x".into())
            .to_string()
            .contains("x"));
        assert!(AadlError::UnknownReference("y".into())
            .to_string()
            .contains("y"));
        assert!(AadlError::Instantiation("boom".into())
            .to_string()
            .contains("boom"));
        let p = AadlError::Property {
            name: "Period".into(),
            message: "expected a time".into(),
        };
        assert!(p.to_string().contains("Period"));
    }
}
