//! An AADL (SAE AS5506) textual subset: lexer, parser, declarative model,
//! timing properties and instance model.
//!
//! The DATE 2013 paper captures AADL models in OSATE (an Eclipse/EMF
//! toolkit) and transforms the resulting ASME syntax model. This crate plays
//! the role of that front end, built from scratch: it parses the AADL
//! surface syntax subset needed by the paper (software components, execution
//! platform components, ports, data/subprogram access, connections, and the
//! timing properties of the input-compute-output execution model), resolves
//! it into a declarative model, and instantiates a root system into a
//! component-instance tree ready for the AADL-to-SIGNAL translation.
//!
//! # Quick start
//!
//! ```
//! use aadl::parse_package;
//!
//! let source = r#"
//! package demo
//! public
//!   thread worker
//!   features
//!     go : in event port;
//!   properties
//!     Dispatch_Protocol => Periodic;
//!     Period => 10 ms;
//!   end worker;
//! end demo;
//! "#;
//! let package = parse_package(source)?;
//! assert_eq!(package.name, "demo");
//! assert_eq!(package.classifiers.len(), 1);
//! # Ok::<(), aadl::AadlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod case_study;
pub mod error;
pub mod instance;
pub mod lexer;
pub mod parser;
pub mod properties;
pub mod synth;

pub use ast::{
    Classifier, ComponentCategory, Connection, ConnectionEnd, Feature, FeatureKind, Package,
    PortDirection, PropertyAssociation, PropertyValue, Subcomponent,
};
pub use error::AadlError;
pub use instance::{ComponentInstance, ConnectionInstance, InstanceModel, ThreadInstance};
pub use parser::{parse_package, Parser};
pub use properties::{DispatchProtocol, Duration, IoTimeSpec, ThreadTiming, TimeUnit};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_level_example_compiles() {
        // The doc-test above is the real test; keep a smoke test here so the
        // module is never empty.
        let pkg = crate::parse_package("package p\npublic\nend p;").unwrap();
        assert_eq!(pkg.name, "p");
    }
}
