//! Synthetic AADL model generation for the scalability experiments.
//!
//! The paper's Section IV-E claims the tool chain handles "several thousand
//! clocks" and that "there is no special size limitation on transformation".
//! This module generates parameterised AADL models — N periodic threads per
//! process, each with a configurable number of ports, chained by port
//! connections and sharing a data component — so that the parser, the
//! instantiation, the translation and the clock calculus can be measured as
//! the model grows.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::ast::Package;
use crate::error::AadlError;
use crate::instance::InstanceModel;
use crate::parser::parse_package;

/// Parameters of a synthetic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of threads in the generated process.
    pub threads: usize,
    /// Number of in/out event data port pairs per thread.
    pub ports_per_thread: usize,
    /// Whether consecutive threads are chained with port connections.
    pub chained: bool,
    /// Whether all threads share one data component.
    pub shared_data: bool,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            threads: 10,
            ports_per_thread: 2,
            chained: true,
            shared_data: true,
        }
    }
}

impl SyntheticSpec {
    /// Convenience constructor for a chained model with shared data.
    pub fn new(threads: usize, ports_per_thread: usize) -> Self {
        Self {
            threads,
            ports_per_thread,
            ..Self::default()
        }
    }
}

/// The periods assigned round-robin to synthetic threads (harmonically
/// related so the hyper-period stays small).
pub const SYNTHETIC_PERIODS_MS: [u64; 4] = [4, 8, 16, 32];

/// Generates the AADL source text of a synthetic model.
pub fn generate_source(spec: &SyntheticSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "package Synthetic");
    let _ = writeln!(out, "public");
    let _ = writeln!(out, "  data SharedBuffer");
    let _ = writeln!(out, "  end SharedBuffer;");

    for i in 0..spec.threads {
        let period = SYNTHETIC_PERIODS_MS[i % SYNTHETIC_PERIODS_MS.len()];
        let _ = writeln!(out, "  thread th{i}");
        let _ = writeln!(out, "  features");
        for p in 0..spec.ports_per_thread {
            let _ = writeln!(out, "    in_{p} : in event data port;");
            let _ = writeln!(out, "    out_{p} : out event data port;");
        }
        if spec.shared_data {
            let _ = writeln!(out, "    shared : requires data access SharedBuffer;");
        }
        let _ = writeln!(out, "  properties");
        let _ = writeln!(out, "    Dispatch_Protocol => Periodic;");
        let _ = writeln!(out, "    Period => {period} ms;");
        let _ = writeln!(out, "    Deadline => {period} ms;");
        let _ = writeln!(out, "    Compute_Execution_Time => 1 ms .. 1 ms;");
        let _ = writeln!(out, "    Priority => {};", spec.threads - i);
        let _ = writeln!(out, "  end th{i};");
    }

    let _ = writeln!(out, "  process worker");
    let _ = writeln!(out, "  end worker;");
    let _ = writeln!(out, "  process implementation worker.impl");
    let _ = writeln!(out, "  subcomponents");
    for i in 0..spec.threads {
        let _ = writeln!(out, "    t{i} : thread th{i};");
    }
    if spec.shared_data {
        let _ = writeln!(out, "    buf : data SharedBuffer;");
    }
    if (spec.chained && spec.threads > 1 && spec.ports_per_thread > 0) || spec.shared_data {
        let _ = writeln!(out, "  connections");
        if spec.chained && spec.ports_per_thread > 0 {
            for i in 0..spec.threads.saturating_sub(1) {
                for p in 0..spec.ports_per_thread {
                    let _ = writeln!(
                        out,
                        "    c{i}_{p} : port t{i}.out_{p} -> t{}.in_{p};",
                        i + 1
                    );
                }
            }
        }
        if spec.shared_data {
            for i in 0..spec.threads {
                let _ = writeln!(out, "    a{i} : data access buf <-> t{i}.shared;");
            }
        }
    }
    let _ = writeln!(out, "  end worker.impl;");

    let _ = writeln!(out, "  processor cpu");
    let _ = writeln!(out, "  end cpu;");
    let _ = writeln!(out, "  system top");
    let _ = writeln!(out, "  end top;");
    let _ = writeln!(out, "  system implementation top.impl");
    let _ = writeln!(out, "  subcomponents");
    let _ = writeln!(out, "    app : process worker.impl;");
    let _ = writeln!(out, "    cpu0 : processor cpu;");
    let _ = writeln!(out, "  properties");
    let _ = writeln!(
        out,
        "    Actual_Processor_Binding => (reference (cpu0)) applies to app;"
    );
    let _ = writeln!(out, "  end top.impl;");
    let _ = writeln!(out, "end Synthetic;");
    out
}

/// Generates and parses a synthetic package.
///
/// # Errors
///
/// Propagates parser errors (which would indicate a generator bug; covered by
/// tests).
pub fn generate_package(spec: &SyntheticSpec) -> Result<Package, AadlError> {
    parse_package(&generate_source(spec))
}

/// Generates, parses and instantiates a synthetic model rooted at
/// `top.impl`.
///
/// # Errors
///
/// Propagates parser and instantiation errors.
pub fn generate_instance(spec: &SyntheticSpec) -> Result<InstanceModel, AadlError> {
    let package = generate_package(spec)?;
    InstanceModel::instantiate(&package, "top.impl")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ComponentCategory;

    #[test]
    fn generated_source_parses_and_instantiates() {
        let spec = SyntheticSpec::new(5, 2);
        let model = generate_instance(&spec).unwrap();
        let counts = model.category_counts();
        assert_eq!(counts[&ComponentCategory::Thread], 5);
        assert_eq!(counts[&ComponentCategory::Data], 1);
        assert_eq!(model.threads().unwrap().len(), 5);
        // chained connections: (5-1) * 2 port connections + 5 accesses
        assert_eq!(model.connections.len(), 13);
    }

    #[test]
    fn unchained_model_without_shared_data() {
        let spec = SyntheticSpec {
            threads: 3,
            ports_per_thread: 1,
            chained: false,
            shared_data: false,
        };
        let model = generate_instance(&spec).unwrap();
        assert!(model.connections.is_empty());
        assert!(model.data_components().is_empty());
    }

    #[test]
    fn periods_cycle_through_harmonic_set() {
        let spec = SyntheticSpec::new(6, 0);
        let model = generate_instance(&spec).unwrap();
        let threads = model.threads().unwrap();
        let periods: Vec<u64> = threads
            .iter()
            .map(|t| t.timing.period.unwrap().as_millis())
            .collect();
        assert_eq!(periods.len(), 6);
        for p in periods {
            assert!(SYNTHETIC_PERIODS_MS.contains(&p));
        }
    }

    #[test]
    fn scales_to_hundreds_of_threads() {
        let spec = SyntheticSpec::new(200, 1);
        let model = generate_instance(&spec).unwrap();
        assert_eq!(model.threads().unwrap().len(), 200);
        assert!(model.instance_count() > 200);
    }

    #[test]
    fn binding_present_in_synthetic_model() {
        let spec = SyntheticSpec::new(2, 1);
        let model = generate_instance(&spec).unwrap();
        assert_eq!(model.processor_binding("top.app"), Some("top.cpu0"));
    }
}
