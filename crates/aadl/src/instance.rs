//! Instantiation of a declarative AADL model into a component-instance tree.
//!
//! OSATE calls this step "instantiation": starting from a root system
//! implementation, every subcomponent is expanded using its classifier, the
//! property associations of types, implementations and subcomponent slots are
//! merged, `applies to` associations are pushed down to the component they
//! target, connection instances are given full paths, and
//! `Actual_Processor_Binding` properties are resolved into explicit bindings.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ast::{
    Classifier, ComponentCategory, ConnectionKind, Feature, Package, PropertyAssociation,
    PropertyValue,
};
use crate::error::AadlError;
use crate::properties::ThreadTiming;

/// A component instance in the instance tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentInstance {
    /// Instance name (subcomponent name, or classifier name for the root).
    pub name: String,
    /// Dotted path from the root instance (the root's path is its name).
    pub path: String,
    /// Component category.
    pub category: ComponentCategory,
    /// Classifier the instance was created from, if any.
    pub classifier: Option<String>,
    /// Features (copied from the component type).
    pub features: Vec<Feature>,
    /// Merged property associations (type, implementation, subcomponent slot,
    /// and inherited `applies to` associations, in that order).
    pub properties: Vec<PropertyAssociation>,
    /// Child instances.
    pub children: Vec<ComponentInstance>,
}

impl ComponentInstance {
    /// Finds a descendant (or self) by dotted path.
    pub fn find(&self, path: &str) -> Option<&ComponentInstance> {
        if self.path == path {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(path))
    }

    /// Iterates over this instance and all descendants, depth first.
    pub fn walk(&self) -> Vec<&ComponentInstance> {
        let mut out = vec![self];
        for child in &self.children {
            out.extend(child.walk());
        }
        out
    }

    /// Number of instances in this subtree (including self).
    pub fn instance_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ComponentInstance::instance_count)
            .sum::<usize>()
    }

    /// Feature lookup by name.
    pub fn feature(&self, name: &str) -> Option<&Feature> {
        self.features.iter().find(|f| f.name == name)
    }
}

/// A connection instance with fully-qualified endpoint paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionInstance {
    /// Connection name (qualified by the enclosing instance path).
    pub name: String,
    /// Kind of connection.
    pub kind: ConnectionKind,
    /// Full path of the source component instance.
    pub source_component: String,
    /// Source feature name.
    pub source_feature: String,
    /// Full path of the destination component instance.
    pub destination_component: String,
    /// Destination feature name.
    pub destination_feature: String,
    /// `true` when the connection is declared `<->`.
    pub bidirectional: bool,
    /// `true` when the connection has `Timing => Delayed`.
    pub delayed: bool,
}

/// A thread instance with its resolved timing contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadInstance {
    /// Full path of the thread instance.
    pub path: String,
    /// Instance name.
    pub name: String,
    /// Resolved timing contract.
    pub timing: ThreadTiming,
    /// Features of the thread (ports and accesses).
    pub features: Vec<Feature>,
}

/// The instantiated model: the instance tree plus flattened connections and
/// processor bindings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceModel {
    /// Root component instance.
    pub root: ComponentInstance,
    /// All connection instances, with full paths.
    pub connections: Vec<ConnectionInstance>,
    /// `(bound component path, processor path)` pairs from
    /// `Actual_Processor_Binding`.
    pub bindings: Vec<(String, String)>,
}

impl InstanceModel {
    /// Instantiates `root_classifier` (a component type or implementation
    /// name) from `package`.
    ///
    /// # Errors
    ///
    /// Returns [`AadlError::UnknownClassifier`] when the root or a referenced
    /// classifier is missing, or [`AadlError::Instantiation`] when the model
    /// is structurally inconsistent.
    pub fn instantiate(package: &Package, root_classifier: &str) -> Result<Self, AadlError> {
        let classifier = package
            .classifier(root_classifier)
            .ok_or_else(|| AadlError::UnknownClassifier(root_classifier.to_string()))?;
        let root_name = match classifier {
            Classifier::ComponentType { name, .. } => name.clone(),
            Classifier::ComponentImplementation { type_name, .. } => type_name.clone(),
        };
        let mut connections = Vec::new();
        let root = build_instance(
            package,
            &root_name,
            &root_name,
            classifier.category(),
            Some(root_classifier.to_string()),
            &[],
            &mut connections,
            0,
        )?;
        let mut model = Self {
            root,
            connections,
            bindings: Vec::new(),
        };
        model.resolve_bindings()?;
        Ok(model)
    }

    fn resolve_bindings(&mut self) -> Result<(), AadlError> {
        let mut bindings = Vec::new();
        for instance in self.root.walk() {
            for pa in &instance.properties {
                if !pa.name.eq_ignore_ascii_case("actual_processor_binding") {
                    continue;
                }
                let processors = reference_paths(&pa.value);
                if processors.is_empty() {
                    return Err(AadlError::Property {
                        name: pa.qualified_name.clone(),
                        message: "expected a processor reference".into(),
                    });
                }
                let targets: Vec<String> = if pa.applies_to.is_empty() {
                    vec![instance.path.clone()]
                } else {
                    pa.applies_to
                        .iter()
                        .map(|path| format!("{}.{}", instance.path, path.join(".")))
                        .collect()
                };
                for target in targets {
                    for processor in &processors {
                        let processor_path = format!("{}.{}", instance.path, processor.join("."));
                        bindings.push((target.clone(), processor_path));
                    }
                }
            }
        }
        // Validate that both ends exist and the processor end is a processor.
        for (target, processor) in &bindings {
            let target_inst = self
                .root
                .find(target)
                .ok_or_else(|| AadlError::UnknownReference(target.clone()))?;
            let proc_inst = self
                .root
                .find(processor)
                .ok_or_else(|| AadlError::UnknownReference(processor.clone()))?;
            if !matches!(
                proc_inst.category,
                ComponentCategory::Processor | ComponentCategory::VirtualProcessor
            ) {
                return Err(AadlError::Instantiation(format!(
                    "`{target}` is bound to `{processor}`, which is a {}, not a processor",
                    proc_inst.category
                )));
            }
            if !matches!(
                target_inst.category,
                ComponentCategory::Process | ComponentCategory::System | ComponentCategory::Thread
            ) {
                return Err(AadlError::Instantiation(format!(
                    "`{target}` ({}) cannot be bound to a processor",
                    target_inst.category
                )));
            }
        }
        self.bindings = bindings;
        Ok(())
    }

    /// All thread instances with their resolved timing contracts.
    ///
    /// # Errors
    ///
    /// Returns [`AadlError::Property`] when a thread carries a malformed
    /// timing property.
    pub fn threads(&self) -> Result<Vec<ThreadInstance>, AadlError> {
        let mut out = Vec::new();
        for instance in self.root.walk() {
            if instance.category != ComponentCategory::Thread {
                continue;
            }
            let timing = ThreadTiming::from_properties(&instance.properties)?;
            out.push(ThreadInstance {
                path: instance.path.clone(),
                name: instance.name.clone(),
                timing,
                features: instance.features.clone(),
            });
        }
        Ok(out)
    }

    /// All data component instances (potential shared data).
    pub fn data_components(&self) -> Vec<&ComponentInstance> {
        self.root
            .walk()
            .into_iter()
            .filter(|c| c.category == ComponentCategory::Data)
            .collect()
    }

    /// The processor a component is bound to, if any (searching enclosing
    /// components as well, since a binding on a process covers its threads).
    pub fn processor_binding(&self, component_path: &str) -> Option<&str> {
        let mut best: Option<&str> = None;
        let mut best_len = 0usize;
        for (target, processor) in &self.bindings {
            if (component_path == target || component_path.starts_with(&format!("{target}.")))
                && target.len() >= best_len
            {
                best = Some(processor.as_str());
                best_len = target.len();
            }
        }
        best
    }

    /// Components that access a shared data instance, via data-access
    /// connections whose one end is the data component.
    pub fn data_accessors(&self, data_path: &str) -> Vec<String> {
        let mut out = Vec::new();
        for conn in &self.connections {
            if conn.kind != ConnectionKind::DataAccess {
                continue;
            }
            if conn.source_component == data_path {
                out.push(conn.destination_component.clone());
            } else if conn.destination_component == data_path {
                out.push(conn.source_component.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Number of component instances.
    pub fn instance_count(&self) -> usize {
        self.root.instance_count()
    }

    /// Number of instances per category.
    pub fn category_counts(&self) -> BTreeMap<ComponentCategory, usize> {
        let mut counts = BTreeMap::new();
        for c in self.root.walk() {
            *counts.entry(c.category).or_insert(0) += 1;
        }
        counts
    }

    /// Looks up a component instance by path.
    pub fn component(&self, path: &str) -> Option<&ComponentInstance> {
        self.root.find(path)
    }
}

fn reference_paths(value: &PropertyValue) -> Vec<Vec<String>> {
    match value {
        PropertyValue::Reference(path) => vec![path.clone()],
        PropertyValue::Ident(name) => vec![vec![name.clone()]],
        PropertyValue::List(items) => items.iter().flat_map(reference_paths).collect(),
        _ => Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_instance(
    package: &Package,
    name: &str,
    path: &str,
    category: ComponentCategory,
    classifier_name: Option<String>,
    slot_properties: &[PropertyAssociation],
    connections: &mut Vec<ConnectionInstance>,
    depth: usize,
) -> Result<ComponentInstance, AadlError> {
    const MAX_DEPTH: usize = 32;
    if depth > MAX_DEPTH {
        return Err(AadlError::Instantiation(format!(
            "component nesting deeper than {MAX_DEPTH} at `{path}` (recursive model?)"
        )));
    }

    let mut features = Vec::new();
    let mut properties = Vec::new();
    let mut children = Vec::new();

    if let Some(ref full_name) = classifier_name {
        // Resolve the type part and the implementation part.
        let (type_name, impl_classifier) = match package.classifier(full_name) {
            Some(c @ Classifier::ComponentImplementation { type_name, .. }) => {
                (type_name.clone(), Some(c))
            }
            Some(Classifier::ComponentType { name, .. }) => (name.clone(), None),
            None => {
                // A classifier written `Type.Impl` whose implementation is
                // missing falls back to the type alone.
                let type_only = full_name.split('.').next().unwrap_or(full_name);
                match package.component_type(type_only) {
                    Some(_) => (type_only.to_string(), None),
                    None => return Err(AadlError::UnknownClassifier(full_name.clone())),
                }
            }
        };

        if let Some(Classifier::ComponentType {
            features: type_features,
            properties: type_properties,
            ..
        }) = package.component_type(&type_name)
        {
            features = type_features.clone();
            properties.extend(type_properties.iter().cloned());
        }

        if let Some(Classifier::ComponentImplementation {
            subcomponents,
            connections: decl_connections,
            properties: impl_properties,
            ..
        }) = impl_classifier
        {
            properties.extend(impl_properties.iter().cloned());
            for sub in subcomponents {
                let child_path = format!("{path}.{}", sub.name);
                let child = build_instance(
                    package,
                    &sub.name,
                    &child_path,
                    sub.category,
                    sub.classifier.clone(),
                    &sub.properties,
                    connections,
                    depth + 1,
                )?;
                children.push(child);
            }
            for conn in decl_connections {
                let sub_names: Vec<&str> = subcomponents.iter().map(|s| s.name.as_str()).collect();
                // An end written `sub.feature` targets a subcomponent's
                // feature; a bare name is either a feature of the enclosing
                // component or (for access connections) a subcomponent such
                // as a shared data component.
                let resolve_end = |component: &Option<String>, feature: &str| match component {
                    Some(sub) => (format!("{path}.{sub}"), feature.to_string()),
                    None if sub_names.contains(&feature) => {
                        (format!("{path}.{feature}"), String::new())
                    }
                    None => (path.to_string(), feature.to_string()),
                };
                let delayed = conn.properties.iter().any(|pa| {
                    pa.name.eq_ignore_ascii_case("timing")
                        && pa
                            .value
                            .as_ident()
                            .map(|v| v.eq_ignore_ascii_case("delayed"))
                            .unwrap_or(false)
                });
                let (source_component, source_feature) =
                    resolve_end(&conn.source.component, &conn.source.feature);
                let (destination_component, destination_feature) =
                    resolve_end(&conn.destination.component, &conn.destination.feature);
                connections.push(ConnectionInstance {
                    name: format!("{path}.{}", conn.name),
                    kind: conn.kind,
                    source_component,
                    source_feature,
                    destination_component,
                    destination_feature,
                    bidirectional: conn.bidirectional,
                    delayed,
                });
            }
        }
    }

    // Subcomponent-slot properties override classifier properties; `applies
    // to` associations are pushed down after children are built.
    properties.extend(slot_properties.iter().cloned());

    let mut instance = ComponentInstance {
        name: name.to_string(),
        path: path.to_string(),
        category,
        classifier: classifier_name,
        features,
        properties: Vec::new(),
        children,
    };

    // Split off `applies to` associations targeting descendants.
    let mut own = Vec::new();
    for pa in properties {
        if pa.applies_to.is_empty() || pa.name.eq_ignore_ascii_case("actual_processor_binding") {
            own.push(pa);
            continue;
        }
        let mut remaining_targets = Vec::new();
        for target in &pa.applies_to {
            let target_path = format!("{path}.{}", target.join("."));
            if let Some(child) = find_mut(&mut instance, &target_path) {
                let mut pushed = pa.clone();
                pushed.applies_to = Vec::new();
                child.properties.push(pushed);
            } else {
                remaining_targets.push(target.clone());
            }
        }
        if !remaining_targets.is_empty() {
            let mut keep = pa.clone();
            keep.applies_to = remaining_targets;
            own.push(keep);
        }
    }
    // Own properties come before inherited ones already pushed to children.
    let mut merged = own;
    merged.append(&mut instance.properties);
    instance.properties = merged;
    Ok(instance)
}

fn find_mut<'a>(
    instance: &'a mut ComponentInstance,
    path: &str,
) -> Option<&'a mut ComponentInstance> {
    if instance.path == path {
        return Some(instance);
    }
    for child in &mut instance.children {
        if let Some(found) = find_mut(child, path) {
            return Some(found);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_package;
    use crate::properties::Duration;

    const SOURCE: &str = r#"
package demo
public
  data Buffer
  end Buffer;

  thread sender
  features
    output : out event data port Buffer;
    state : requires data access Buffer;
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
  end sender;

  thread receiver
  features
    input : in event data port Buffer;
    state : requires data access Buffer;
  properties
    Dispatch_Protocol => Periodic;
    Period => 6 ms;
  end receiver;

  process node
  end node;

  process implementation node.impl
  subcomponents
    tx : thread sender;
    rx : thread receiver;
    buf : data Buffer;
  connections
    c1 : port tx.output -> rx.input {Timing => Delayed;};
    a1 : data access buf <-> tx.state;
    a2 : data access buf <-> rx.state;
  properties
    Priority => 7 applies to tx;
  end node.impl;

  processor cpu
  end cpu;

  system root
  end root;

  system implementation root.impl
  subcomponents
    node1 : process node.impl;
    cpu1 : processor cpu;
  properties
    Actual_Processor_Binding => (reference (cpu1)) applies to node1;
  end root.impl;
end demo;
"#;

    fn model() -> InstanceModel {
        let pkg = parse_package(SOURCE).unwrap();
        InstanceModel::instantiate(&pkg, "root.impl").unwrap()
    }

    #[test]
    fn instance_tree_shape() {
        let m = model();
        assert_eq!(m.root.path, "root");
        assert_eq!(m.instance_count(), 6); // root, node1, tx, rx, buf, cpu1
        assert!(m.component("root.node1.tx").is_some());
        assert!(m.component("root.node1.buf").is_some());
        assert!(m.component("root.cpu1").is_some());
        assert!(m.component("root.missing").is_none());
        let counts = m.category_counts();
        assert_eq!(counts[&ComponentCategory::Thread], 2);
        assert_eq!(counts[&ComponentCategory::Data], 1);
    }

    #[test]
    fn threads_have_timing() {
        let m = model();
        let threads = m.threads().unwrap();
        assert_eq!(threads.len(), 2);
        let tx = threads.iter().find(|t| t.name == "tx").unwrap();
        assert_eq!(tx.timing.period, Some(Duration::from_millis(4)));
        assert_eq!(tx.path, "root.node1.tx");
        assert_eq!(tx.features.len(), 2);
    }

    #[test]
    fn applies_to_pushes_priority_to_thread() {
        let m = model();
        let tx = m.component("root.node1.tx").unwrap();
        let prio = tx
            .properties
            .iter()
            .find(|pa| pa.name == "Priority")
            .expect("priority pushed down");
        assert_eq!(prio.value.as_integer(), Some(7));
        assert!(prio.applies_to.is_empty());
    }

    #[test]
    fn connection_instances_have_full_paths() {
        let m = model();
        assert_eq!(m.connections.len(), 3);
        let port = m
            .connections
            .iter()
            .find(|c| c.kind == ConnectionKind::Port)
            .unwrap();
        assert_eq!(port.source_component, "root.node1.tx");
        assert_eq!(port.destination_component, "root.node1.rx");
        assert!(port.delayed);
        let accessors = m.data_accessors("root.node1.buf");
        assert_eq!(
            accessors,
            vec!["root.node1.rx".to_string(), "root.node1.tx".to_string()]
        );
    }

    #[test]
    fn processor_binding_resolution() {
        let m = model();
        assert_eq!(m.bindings.len(), 1);
        assert_eq!(m.processor_binding("root.node1"), Some("root.cpu1"));
        // The binding of the enclosing process covers its threads.
        assert_eq!(m.processor_binding("root.node1.tx"), Some("root.cpu1"));
        assert_eq!(m.processor_binding("root.cpu1"), None);
    }

    #[test]
    fn unknown_root_rejected() {
        let pkg = parse_package(SOURCE).unwrap();
        assert!(matches!(
            InstanceModel::instantiate(&pkg, "nope"),
            Err(AadlError::UnknownClassifier(_))
        ));
    }

    #[test]
    fn binding_to_non_processor_rejected() {
        let bad = r#"
package p
public
  process node
  end node;
  system root
  end root;
  system implementation root.impl
  subcomponents
    node1 : process node;
    node2 : process node;
  properties
    Actual_Processor_Binding => (reference (node2)) applies to node1;
  end root.impl;
end p;
"#;
        let pkg = parse_package(bad).unwrap();
        assert!(matches!(
            InstanceModel::instantiate(&pkg, "root.impl"),
            Err(AadlError::Instantiation(_))
        ));
    }

    #[test]
    fn type_only_root_instantiates() {
        let pkg = parse_package(SOURCE).unwrap();
        let m = InstanceModel::instantiate(&pkg, "node.impl").unwrap();
        assert_eq!(m.root.path, "node");
        assert_eq!(m.instance_count(), 4);
        // No processor in scope: no bindings.
        assert!(m.bindings.is_empty());
    }

    #[test]
    fn walk_and_feature_lookup() {
        let m = model();
        let tx = m.component("root.node1.tx").unwrap();
        assert!(tx.feature("output").is_some());
        assert!(tx.feature("nothing").is_none());
        assert_eq!(m.root.walk().len(), m.instance_count());
    }
}
