//! Lexer for the AADL textual subset.

use serde::{Deserialize, Serialize};

use crate::error::AadlError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

/// Token kinds of the AADL subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier or keyword (AADL keywords are context-dependent, so the
    /// parser decides).
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Real literal.
    Real(f64),
    /// String literal (without quotes).
    Str(String),
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=>`
    Arrow,
    /// `->`
    RightArrow,
    /// `<->`
    BiArrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenises AADL source text.
///
/// # Errors
///
/// Returns [`AadlError::Lex`] on an unexpected character or an unterminated
/// string literal.
pub fn tokenize(source: &str) -> Result<Vec<Token>, AadlError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                tokens.push(Token {
                    kind: TokenKind::RightArrow,
                    line,
                });
                i += 2;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
                i += 1;
            }
            '<' if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] == '>' => {
                tokens.push(Token {
                    kind: TokenKind::BiArrow,
                    line,
                });
                i += 3;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
                i += 1;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == ':' => {
                tokens.push(Token {
                    kind: TokenKind::DoubleColon,
                    line,
                });
                i += 2;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1] == '.' => {
                tokens.push(Token {
                    kind: TokenKind::DotDot,
                    line,
                });
                i += 2;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            '=' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    line,
                });
                i += 2;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            '"' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(AadlError::Lex {
                            line: start_line,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let c = bytes[i];
                    if c == '"' {
                        i += 1;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A real literal: digits '.' digits — but not `..` (a range).
                let is_real =
                    i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit();
                if is_real {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let value = text.parse::<f64>().map_err(|_| AadlError::Lex {
                        line,
                        message: format!("invalid real literal `{text}`"),
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Real(value),
                        line,
                    });
                } else {
                    let text: String = bytes[start..i].iter().collect();
                    let value = text.parse::<i64>().map_err(|_| AadlError::Lex {
                        line,
                        message: format!("invalid integer literal `{text}`"),
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Integer(value),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            other => {
                return Err(AadlError::Lex {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_punctuation() {
        let toks = kinds("thread worker features go : in event port; end worker;");
        assert_eq!(toks[0], TokenKind::Ident("thread".into()));
        assert!(toks.contains(&TokenKind::Colon));
        assert!(toks.contains(&TokenKind::Semicolon));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a -- this is a comment\nb");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_ranges_and_units() {
        let toks = kinds("Period => 4 ms; Compute_Execution_Time => 1 ms .. 2 ms;");
        assert!(toks.contains(&TokenKind::Arrow));
        assert!(toks.contains(&TokenKind::Integer(4)));
        assert!(toks.contains(&TokenKind::DotDot));
        let toks = kinds("3.5 ms");
        assert!(toks.contains(&TokenKind::Real(3.5)));
    }

    #[test]
    fn arrows_and_references() {
        let toks = kinds("port thProducer.pData -> thConsumer.pIn;");
        assert!(toks.contains(&TokenKind::RightArrow));
        assert!(toks.contains(&TokenKind::Dot));
        let toks = kinds("a <-> b");
        assert!(toks.contains(&TokenKind::BiArrow));
    }

    #[test]
    fn strings_and_line_tracking() {
        let toks = tokenize("\n\n\"hello world\"").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("hello world".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn lexical_errors_are_reported() {
        assert!(matches!(tokenize("@"), Err(AadlError::Lex { .. })));
        assert!(matches!(tokenize("\"abc"), Err(AadlError::Lex { .. })));
    }

    #[test]
    fn double_colon_and_braces() {
        let toks = kinds("SEI::x {a}");
        assert!(toks.contains(&TokenKind::DoubleColon));
        assert!(toks.contains(&TokenKind::LBrace));
        assert!(toks.contains(&TokenKind::RBrace));
    }

    #[test]
    fn as_ident_helper() {
        assert_eq!(TokenKind::Ident("x".into()).as_ident(), Some("x"));
        assert_eq!(TokenKind::Comma.as_ident(), None);
    }
}
