//! Declarative AST of the AADL subset: packages, component types and
//! implementations, features, subcomponents, connections and property
//! associations.

use serde::{Deserialize, Serialize};

use std::fmt;

/// The AADL component categories supported by the translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentCategory {
    /// Composite `system` component.
    System,
    /// Software `process` (an address space containing threads).
    Process,
    /// Software `thread` (the schedulable unit).
    Thread,
    /// Software `thread group`.
    ThreadGroup,
    /// Software `subprogram`.
    Subprogram,
    /// Software `data` component (possibly shared).
    Data,
    /// Execution platform `processor`.
    Processor,
    /// Execution platform `virtual processor`.
    VirtualProcessor,
    /// Execution platform `memory`.
    Memory,
    /// Execution platform `bus`.
    Bus,
    /// Execution platform `virtual bus`.
    VirtualBus,
    /// Execution platform `device`.
    Device,
}

impl ComponentCategory {
    /// All categories, in a stable order.
    pub const ALL: [ComponentCategory; 12] = [
        ComponentCategory::System,
        ComponentCategory::Process,
        ComponentCategory::Thread,
        ComponentCategory::ThreadGroup,
        ComponentCategory::Subprogram,
        ComponentCategory::Data,
        ComponentCategory::Processor,
        ComponentCategory::VirtualProcessor,
        ComponentCategory::Memory,
        ComponentCategory::Bus,
        ComponentCategory::VirtualBus,
        ComponentCategory::Device,
    ];

    /// The AADL keyword(s) of this category.
    pub fn keyword(&self) -> &'static str {
        match self {
            ComponentCategory::System => "system",
            ComponentCategory::Process => "process",
            ComponentCategory::Thread => "thread",
            ComponentCategory::ThreadGroup => "thread group",
            ComponentCategory::Subprogram => "subprogram",
            ComponentCategory::Data => "data",
            ComponentCategory::Processor => "processor",
            ComponentCategory::VirtualProcessor => "virtual processor",
            ComponentCategory::Memory => "memory",
            ComponentCategory::Bus => "bus",
            ComponentCategory::VirtualBus => "virtual bus",
            ComponentCategory::Device => "device",
        }
    }

    /// Returns `true` for software application categories.
    pub fn is_software(&self) -> bool {
        matches!(
            self,
            ComponentCategory::Process
                | ComponentCategory::Thread
                | ComponentCategory::ThreadGroup
                | ComponentCategory::Subprogram
                | ComponentCategory::Data
        )
    }

    /// Returns `true` for execution platform categories.
    pub fn is_platform(&self) -> bool {
        matches!(
            self,
            ComponentCategory::Processor
                | ComponentCategory::VirtualProcessor
                | ComponentCategory::Memory
                | ComponentCategory::Bus
                | ComponentCategory::VirtualBus
                | ComponentCategory::Device
        )
    }
}

impl fmt::Display for ComponentCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Direction of a port feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// `in` port.
    In,
    /// `out` port.
    Out,
    /// `in out` port.
    InOut,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortDirection::In => "in",
            PortDirection::Out => "out",
            PortDirection::InOut => "in out",
        };
        f.write_str(s)
    }
}

/// Kind of a feature (interface point) of a component type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// `event port` — queued, may trigger dispatch.
    EventPort,
    /// `data port` — unqueued latest-value semantics.
    DataPort {
        /// Optional data classifier.
        classifier: Option<String>,
    },
    /// `event data port` — queued messages carrying data.
    EventDataPort {
        /// Optional data classifier.
        classifier: Option<String>,
    },
    /// `requires data access` / `provides data access` to a shared data
    /// component.
    DataAccess {
        /// `true` for `provides`, `false` for `requires`.
        provides: bool,
        /// Data classifier accessed.
        classifier: Option<String>,
    },
    /// `requires subprogram access` / `provides subprogram access`.
    SubprogramAccess {
        /// `true` for `provides`, `false` for `requires`.
        provides: bool,
        /// Subprogram classifier accessed.
        classifier: Option<String>,
    },
}

impl FeatureKind {
    /// Returns `true` when this feature is a port (event, data or event
    /// data).
    pub fn is_port(&self) -> bool {
        matches!(
            self,
            FeatureKind::EventPort
                | FeatureKind::DataPort { .. }
                | FeatureKind::EventDataPort { .. }
        )
    }
}

/// A feature of a component type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Feature name.
    pub name: String,
    /// Direction (meaningful for ports; accesses use `In`).
    pub direction: PortDirection,
    /// Feature kind.
    pub kind: FeatureKind,
    /// Property associations local to the feature (e.g. `Queue_Size`).
    pub properties: Vec<PropertyAssociation>,
}

/// A subcomponent declaration inside a component implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subcomponent {
    /// Subcomponent name.
    pub name: String,
    /// Category of the subcomponent.
    pub category: ComponentCategory,
    /// Referenced classifier (`Type` or `Type.Impl`), if given.
    pub classifier: Option<String>,
    /// Property associations local to the subcomponent.
    pub properties: Vec<PropertyAssociation>,
}

/// One end of a connection: an optional subcomponent name and a feature
/// name (`sub.feature` or just `feature` for the enclosing component's own
/// feature).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionEnd {
    /// Subcomponent holding the feature; `None` when the feature belongs to
    /// the enclosing component.
    pub component: Option<String>,
    /// Feature name.
    pub feature: String,
}

impl fmt::Display for ConnectionEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.component {
            Some(c) => write!(f, "{c}.{}", self.feature),
            None => f.write_str(&self.feature),
        }
    }
}

/// Kind of connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionKind {
    /// `port` connection.
    Port,
    /// `data access` connection.
    DataAccess,
    /// `bus access` connection.
    BusAccess,
}

/// A connection declaration inside a component implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Connection name.
    pub name: String,
    /// Kind of connection.
    pub kind: ConnectionKind,
    /// Source end.
    pub source: ConnectionEnd,
    /// Destination end.
    pub destination: ConnectionEnd,
    /// `true` for bidirectional (`<->`) access connections.
    pub bidirectional: bool,
    /// Property associations (e.g. `Timing => Delayed`).
    pub properties: Vec<PropertyAssociation>,
}

/// A property value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropertyValue {
    /// An enumeration literal or other bare identifier (e.g. `Periodic`).
    Ident(String),
    /// An integer, optionally with a unit (e.g. `4 ms`).
    Integer(i64, Option<String>),
    /// A real number, optionally with a unit.
    Real(f64, Option<String>),
    /// A string literal.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// A numeric range `lo .. hi` (e.g. `1 ms .. 2 ms`).
    Range(Box<PropertyValue>, Box<PropertyValue>),
    /// A `reference (path.to.component)` value.
    Reference(Vec<String>),
    /// A parenthesised list of values.
    List(Vec<PropertyValue>),
}

impl PropertyValue {
    /// Interprets the value as an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            PropertyValue::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as an integer (ignoring any unit).
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            PropertyValue::Integer(v, _) => Some(*v),
            PropertyValue::Real(v, _) => Some(*v as i64),
            _ => None,
        }
    }
}

/// A property association `Name => value [applies to x, y];`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyAssociation {
    /// Property name, possibly qualified (`Thread_Properties::Priority`); the
    /// unqualified last segment is stored in `name`, the full text in
    /// `qualified_name`.
    pub name: String,
    /// The full (possibly qualified) name as written.
    pub qualified_name: String,
    /// The value.
    pub value: PropertyValue,
    /// The `applies to` targets (paths of subcomponent names), if any.
    pub applies_to: Vec<Vec<String>>,
}

impl PropertyAssociation {
    /// Creates a simple association without `applies to`.
    pub fn new(name: impl Into<String>, value: PropertyValue) -> Self {
        let name = name.into();
        Self {
            qualified_name: name.clone(),
            name,
            value,
            applies_to: Vec::new(),
        }
    }
}

/// A component type or a component implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Classifier {
    /// A component type: `thread thProducer … end thProducer;`.
    ComponentType {
        /// Component category.
        category: ComponentCategory,
        /// Type name.
        name: String,
        /// Declared features.
        features: Vec<Feature>,
        /// Property associations.
        properties: Vec<PropertyAssociation>,
    },
    /// A component implementation: `thread implementation thProducer.impl …`.
    ComponentImplementation {
        /// Component category.
        category: ComponentCategory,
        /// Name of the implemented type.
        type_name: String,
        /// Implementation name (the part after the dot).
        impl_name: String,
        /// Subcomponents.
        subcomponents: Vec<Subcomponent>,
        /// Connections.
        connections: Vec<Connection>,
        /// Property associations.
        properties: Vec<PropertyAssociation>,
    },
}

impl Classifier {
    /// The category of the classifier.
    pub fn category(&self) -> ComponentCategory {
        match self {
            Classifier::ComponentType { category, .. }
            | Classifier::ComponentImplementation { category, .. } => *category,
        }
    }

    /// The full name of the classifier (`Type` or `Type.Impl`).
    pub fn full_name(&self) -> String {
        match self {
            Classifier::ComponentType { name, .. } => name.clone(),
            Classifier::ComponentImplementation {
                type_name,
                impl_name,
                ..
            } => format!("{type_name}.{impl_name}"),
        }
    }

    /// The property associations declared directly on this classifier.
    pub fn properties(&self) -> &[PropertyAssociation] {
        match self {
            Classifier::ComponentType { properties, .. }
            | Classifier::ComponentImplementation { properties, .. } => properties,
        }
    }
}

/// An AADL package: a named container of classifiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    /// Package name (possibly with `::` separators collapsed to `_`).
    pub name: String,
    /// Declared classifiers, in source order.
    pub classifiers: Vec<Classifier>,
}

impl Package {
    /// Looks up a classifier by full name (`Type` or `Type.Impl`).
    pub fn classifier(&self, full_name: &str) -> Option<&Classifier> {
        self.classifiers.iter().find(|c| c.full_name() == full_name)
    }

    /// Looks up the component type of the given name.
    pub fn component_type(&self, name: &str) -> Option<&Classifier> {
        self.classifiers
            .iter()
            .find(|c| matches!(c, Classifier::ComponentType { name: n, .. } if n == name))
    }

    /// All classifiers of a given category.
    pub fn by_category(&self, category: ComponentCategory) -> Vec<&Classifier> {
        self.classifiers
            .iter()
            .filter(|c| c.category() == category)
            .collect()
    }

    /// Number of classifiers.
    pub fn len(&self) -> usize {
        self.classifiers.len()
    }

    /// Returns `true` when the package declares no classifier.
    pub fn is_empty(&self) -> bool {
        self.classifiers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_partition_software_and_platform() {
        for cat in ComponentCategory::ALL {
            if cat == ComponentCategory::System {
                assert!(!cat.is_software() && !cat.is_platform());
            } else {
                assert!(cat.is_software() ^ cat.is_platform(), "{cat}");
            }
        }
        assert_eq!(ComponentCategory::Thread.keyword(), "thread");
        assert_eq!(
            ComponentCategory::VirtualProcessor.to_string(),
            "virtual processor"
        );
    }

    #[test]
    fn classifier_full_names() {
        let ty = Classifier::ComponentType {
            category: ComponentCategory::Thread,
            name: "thProducer".into(),
            features: vec![],
            properties: vec![],
        };
        assert_eq!(ty.full_name(), "thProducer");
        let imp = Classifier::ComponentImplementation {
            category: ComponentCategory::Thread,
            type_name: "thProducer".into(),
            impl_name: "impl".into(),
            subcomponents: vec![],
            connections: vec![],
            properties: vec![],
        };
        assert_eq!(imp.full_name(), "thProducer.impl");
        assert_eq!(imp.category(), ComponentCategory::Thread);
    }

    #[test]
    fn package_lookup() {
        let pkg = Package {
            name: "p".into(),
            classifiers: vec![
                Classifier::ComponentType {
                    category: ComponentCategory::Thread,
                    name: "a".into(),
                    features: vec![],
                    properties: vec![],
                },
                Classifier::ComponentImplementation {
                    category: ComponentCategory::Thread,
                    type_name: "a".into(),
                    impl_name: "impl".into(),
                    subcomponents: vec![],
                    connections: vec![],
                    properties: vec![],
                },
            ],
        };
        assert!(pkg.classifier("a").is_some());
        assert!(pkg.classifier("a.impl").is_some());
        assert!(pkg.classifier("b").is_none());
        assert_eq!(pkg.by_category(ComponentCategory::Thread).len(), 2);
        assert_eq!(pkg.len(), 2);
        assert!(!pkg.is_empty());
        assert!(pkg.component_type("a").is_some());
    }

    #[test]
    fn property_value_accessors() {
        assert_eq!(
            PropertyValue::Ident("Periodic".into()).as_ident(),
            Some("Periodic")
        );
        assert_eq!(
            PropertyValue::Integer(4, Some("ms".into())).as_integer(),
            Some(4)
        );
        assert_eq!(PropertyValue::Real(1.5, None).as_integer(), Some(1));
        assert_eq!(PropertyValue::Str("x".into()).as_integer(), None);
    }

    #[test]
    fn connection_end_display() {
        let end = ConnectionEnd {
            component: Some("thProducer".into()),
            feature: "pData".into(),
        };
        assert_eq!(end.to_string(), "thProducer.pData");
        let own = ConnectionEnd {
            component: None,
            feature: "pIn".into(),
        };
        assert_eq!(own.to_string(), "pIn");
    }

    #[test]
    fn feature_kind_port_check() {
        assert!(FeatureKind::EventPort.is_port());
        assert!(FeatureKind::DataPort { classifier: None }.is_port());
        assert!(!FeatureKind::DataAccess {
            provides: false,
            classifier: None
        }
        .is_port());
    }
}
