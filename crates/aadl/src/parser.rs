//! Recursive-descent parser for the AADL textual subset.

use crate::ast::{
    Classifier, ComponentCategory, Connection, ConnectionEnd, ConnectionKind, Feature, FeatureKind,
    Package, PortDirection, PropertyAssociation, PropertyValue, Subcomponent,
};
use crate::error::AadlError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses one AADL package from source text.
///
/// # Errors
///
/// Returns [`AadlError::Lex`] or [`AadlError::Parse`] describing the first
/// problem found, with its line number.
pub fn parse_package(source: &str) -> Result<Package, AadlError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    parser.package()
}

/// The parser state: a token stream and a cursor.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream (usually from
    /// [`crate::lexer::tokenize`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> AadlError {
        AadlError::parse(self.line(), message)
    }

    fn expect_ident(&mut self) -> Result<String, AadlError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), AadlError> {
        match self.bump() {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), AadlError> {
        let found = self.bump();
        if &found == kind {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {found:?}")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parses `package NAME public … end NAME;`.
    pub fn package(&mut self) -> Result<Package, AadlError> {
        self.expect_keyword("package")?;
        let name = self.qualified_name()?;
        // `public` / `private` section markers are accepted and ignored.
        loop {
            if self.eat_keyword("public") || self.eat_keyword("private") {
                continue;
            }
            if self.eat_keyword("with") {
                // `with pkg, pkg2;` import clause: skip to `;`.
                while !matches!(self.peek(), TokenKind::Semicolon | TokenKind::Eof) {
                    self.bump();
                }
                self.expect(&TokenKind::Semicolon)?;
                continue;
            }
            break;
        }
        let mut classifiers = Vec::new();
        while !self.at_keyword("end") {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of file inside package"));
            }
            classifiers.push(self.classifier()?);
        }
        self.expect_keyword("end")?;
        let _ = self.qualified_name()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Package { name, classifiers })
    }

    fn qualified_name(&mut self) -> Result<String, AadlError> {
        let mut name = self.expect_ident()?;
        while matches!(self.peek(), TokenKind::DoubleColon) {
            self.bump();
            name.push('_');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn component_category(&mut self) -> Result<ComponentCategory, AadlError> {
        let word = self.expect_ident()?.to_ascii_lowercase();
        let category = match word.as_str() {
            "system" => ComponentCategory::System,
            "process" => ComponentCategory::Process,
            "thread" => {
                if self.at_keyword("group") {
                    self.bump();
                    ComponentCategory::ThreadGroup
                } else {
                    ComponentCategory::Thread
                }
            }
            "subprogram" => ComponentCategory::Subprogram,
            "data" => ComponentCategory::Data,
            "processor" => ComponentCategory::Processor,
            "virtual" => {
                let next = self.expect_ident()?.to_ascii_lowercase();
                match next.as_str() {
                    "processor" => ComponentCategory::VirtualProcessor,
                    "bus" => ComponentCategory::VirtualBus,
                    other => return Err(self.error(format!("unknown category `virtual {other}`"))),
                }
            }
            "memory" => ComponentCategory::Memory,
            "bus" => ComponentCategory::Bus,
            "device" => ComponentCategory::Device,
            other => return Err(self.error(format!("unknown component category `{other}`"))),
        };
        Ok(category)
    }

    fn classifier(&mut self) -> Result<Classifier, AadlError> {
        let category = self.component_category()?;
        if self.eat_keyword("implementation") {
            self.component_implementation(category)
        } else {
            self.component_type(category)
        }
    }

    fn component_type(&mut self, category: ComponentCategory) -> Result<Classifier, AadlError> {
        let name = self.expect_ident()?;
        let mut features = Vec::new();
        let mut properties = Vec::new();
        loop {
            if self.eat_keyword("features") {
                while !self.at_keyword("properties")
                    && !self.at_keyword("end")
                    && !self.at_keyword("flows")
                {
                    features.push(self.feature()?);
                }
            } else if self.eat_keyword("flows") {
                // Flow specifications are accepted and skipped.
                while !self.at_keyword("properties") && !self.at_keyword("end") {
                    self.bump();
                }
            } else if self.eat_keyword("properties") {
                while !self.at_keyword("end") {
                    properties.push(self.property_association()?);
                }
            } else {
                break;
            }
        }
        self.expect_keyword("end")?;
        let end_name = self.expect_ident()?;
        if end_name != name {
            return Err(self.error(format!(
                "component type `{name}` terminated by `end {end_name}`"
            )));
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(Classifier::ComponentType {
            category,
            name,
            features,
            properties,
        })
    }

    fn component_implementation(
        &mut self,
        category: ComponentCategory,
    ) -> Result<Classifier, AadlError> {
        let type_name = self.expect_ident()?;
        self.expect(&TokenKind::Dot)?;
        let impl_name = self.expect_ident()?;
        let mut subcomponents = Vec::new();
        let mut connections = Vec::new();
        let mut properties = Vec::new();
        loop {
            if self.eat_keyword("subcomponents") {
                while !self.at_section_end() {
                    subcomponents.push(self.subcomponent()?);
                }
            } else if self.eat_keyword("connections") {
                while !self.at_section_end() {
                    connections.push(self.connection()?);
                }
            } else if self.eat_keyword("calls")
                || self.eat_keyword("flows")
                || self.eat_keyword("modes")
            {
                // Skipped sections: consume until the next section keyword.
                while !self.at_section_end() {
                    self.bump();
                }
            } else if self.eat_keyword("properties") {
                while !self.at_keyword("end") {
                    properties.push(self.property_association()?);
                }
            } else {
                break;
            }
        }
        self.expect_keyword("end")?;
        let end_type = self.expect_ident()?;
        self.expect(&TokenKind::Dot)?;
        let end_impl = self.expect_ident()?;
        if end_type != type_name || end_impl != impl_name {
            return Err(self.error(format!(
                "implementation `{type_name}.{impl_name}` terminated by `end {end_type}.{end_impl}`"
            )));
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(Classifier::ComponentImplementation {
            category,
            type_name,
            impl_name,
            subcomponents,
            connections,
            properties,
        })
    }

    fn at_section_end(&self) -> bool {
        self.at_keyword("subcomponents")
            || self.at_keyword("connections")
            || self.at_keyword("calls")
            || self.at_keyword("flows")
            || self.at_keyword("modes")
            || self.at_keyword("properties")
            || self.at_keyword("end")
            || matches!(self.peek(), TokenKind::Eof)
    }

    fn feature(&mut self) -> Result<Feature, AadlError> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        // Direction or requires/provides.
        let mut direction = PortDirection::In;
        let mut provides = false;
        if self.eat_keyword("in") {
            if self.eat_keyword("out") {
                direction = PortDirection::InOut;
            } else {
                direction = PortDirection::In;
            }
        } else if self.eat_keyword("out") {
            direction = PortDirection::Out;
        } else if self.eat_keyword("requires") {
            provides = false;
        } else if self.eat_keyword("provides") {
            provides = true;
        }

        let kind = if self.eat_keyword("event") {
            if self.eat_keyword("data") {
                self.expect_keyword("port")?;
                let classifier = self.optional_classifier_ref()?;
                FeatureKind::EventDataPort { classifier }
            } else {
                self.expect_keyword("port")?;
                FeatureKind::EventPort
            }
        } else if self.eat_keyword("data") {
            if self.eat_keyword("port") {
                let classifier = self.optional_classifier_ref()?;
                FeatureKind::DataPort { classifier }
            } else {
                self.expect_keyword("access")?;
                let classifier = self.optional_classifier_ref()?;
                FeatureKind::DataAccess {
                    provides,
                    classifier,
                }
            }
        } else if self.eat_keyword("subprogram") {
            self.expect_keyword("access")?;
            let classifier = self.optional_classifier_ref()?;
            FeatureKind::SubprogramAccess {
                provides,
                classifier,
            }
        } else {
            return Err(self.error("expected a port or access feature"));
        };

        let properties = self.optional_curly_properties()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Feature {
            name,
            direction,
            kind,
            properties,
        })
    }

    fn optional_classifier_ref(&mut self) -> Result<Option<String>, AadlError> {
        if let TokenKind::Ident(_) = self.peek() {
            Ok(Some(self.dotted_name()?))
        } else {
            Ok(None)
        }
    }

    fn dotted_name(&mut self) -> Result<String, AadlError> {
        let mut name = self.qualified_name()?;
        while matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn subcomponent(&mut self) -> Result<Subcomponent, AadlError> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let category = self.component_category()?;
        let classifier = self.optional_classifier_ref()?;
        let properties = self.optional_curly_properties()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Subcomponent {
            name,
            category,
            classifier,
            properties,
        })
    }

    fn connection(&mut self) -> Result<Connection, AadlError> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let kind = if self.eat_keyword("port") {
            ConnectionKind::Port
        } else if self.eat_keyword("data") {
            self.expect_keyword("access")?;
            ConnectionKind::DataAccess
        } else if self.eat_keyword("bus") {
            self.expect_keyword("access")?;
            ConnectionKind::BusAccess
        } else {
            return Err(self.error("expected `port`, `data access` or `bus access` connection"));
        };
        let source = self.connection_end()?;
        let bidirectional = match self.bump() {
            TokenKind::RightArrow => false,
            TokenKind::BiArrow => true,
            other => return Err(self.error(format!("expected `->` or `<->`, found {other:?}"))),
        };
        let destination = self.connection_end()?;
        let properties = self.optional_curly_properties()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Connection {
            name,
            kind,
            source,
            destination,
            bidirectional,
            properties,
        })
    }

    fn connection_end(&mut self) -> Result<ConnectionEnd, AadlError> {
        let first = self.expect_ident()?;
        if matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            let feature = self.expect_ident()?;
            Ok(ConnectionEnd {
                component: Some(first),
                feature,
            })
        } else {
            Ok(ConnectionEnd {
                component: None,
                feature: first,
            })
        }
    }

    fn optional_curly_properties(&mut self) -> Result<Vec<PropertyAssociation>, AadlError> {
        let mut properties = Vec::new();
        if matches!(self.peek(), TokenKind::LBrace) {
            self.bump();
            while !matches!(self.peek(), TokenKind::RBrace) {
                properties.push(self.property_association()?);
            }
            self.expect(&TokenKind::RBrace)?;
        }
        Ok(properties)
    }

    fn property_association(&mut self) -> Result<PropertyAssociation, AadlError> {
        let qualified_name = {
            let mut name = self.expect_ident()?;
            while matches!(self.peek(), TokenKind::DoubleColon) {
                self.bump();
                name.push_str("::");
                name.push_str(&self.expect_ident()?);
            }
            name
        };
        let name = qualified_name
            .rsplit("::")
            .next()
            .unwrap_or(&qualified_name)
            .to_string();
        self.expect(&TokenKind::Arrow)?;
        let value = self.property_value()?;
        let mut applies_to = Vec::new();
        if self.eat_keyword("applies") {
            self.expect_keyword("to")?;
            loop {
                let mut path = vec![self.expect_ident()?];
                while matches!(self.peek(), TokenKind::Dot) {
                    self.bump();
                    path.push(self.expect_ident()?);
                }
                applies_to.push(path);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // `in modes (...)` clauses are accepted and ignored.
        if self.eat_keyword("in") {
            self.expect_keyword("modes")?;
            self.skip_parenthesised()?;
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(PropertyAssociation {
            name,
            qualified_name,
            value,
            applies_to,
        })
    }

    fn skip_parenthesised(&mut self) -> Result<(), AadlError> {
        self.expect(&TokenKind::LParen)?;
        let mut depth = 1usize;
        loop {
            match self.bump() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Eof => return Err(self.error("unterminated parenthesised clause")),
                _ => {}
            }
        }
    }

    fn property_value(&mut self) -> Result<PropertyValue, AadlError> {
        let first = self.simple_property_value()?;
        if matches!(self.peek(), TokenKind::DotDot) {
            self.bump();
            let second = self.simple_property_value()?;
            return Ok(PropertyValue::Range(Box::new(first), Box::new(second)));
        }
        Ok(first)
    }

    fn simple_property_value(&mut self) -> Result<PropertyValue, AadlError> {
        match self.peek().clone() {
            TokenKind::Integer(v) => {
                self.bump();
                let unit = self.optional_unit();
                Ok(PropertyValue::Integer(v, unit))
            }
            TokenKind::Minus => {
                self.bump();
                match self.bump() {
                    TokenKind::Integer(v) => {
                        let unit = self.optional_unit();
                        Ok(PropertyValue::Integer(-v, unit))
                    }
                    TokenKind::Real(v) => {
                        let unit = self.optional_unit();
                        Ok(PropertyValue::Real(-v, unit))
                    }
                    other => Err(self.error(format!("expected number after `-`, found {other:?}"))),
                }
            }
            TokenKind::Real(v) => {
                self.bump();
                let unit = self.optional_unit();
                Ok(PropertyValue::Real(v, unit))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(PropertyValue::Str(s))
            }
            TokenKind::LParen => {
                self.bump();
                let mut items = Vec::new();
                while !matches!(self.peek(), TokenKind::RParen) {
                    items.push(self.property_value()?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(PropertyValue::List(items))
            }
            TokenKind::Ident(word) => {
                if word.eq_ignore_ascii_case("reference") || word.eq_ignore_ascii_case("classifier")
                {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let mut path = vec![self.expect_ident()?];
                    while matches!(self.peek(), TokenKind::Dot) {
                        self.bump();
                        path.push(self.expect_ident()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(PropertyValue::Reference(path))
                } else if word.eq_ignore_ascii_case("true") {
                    self.bump();
                    Ok(PropertyValue::Bool(true))
                } else if word.eq_ignore_ascii_case("false") {
                    self.bump();
                    Ok(PropertyValue::Bool(false))
                } else {
                    self.bump();
                    Ok(PropertyValue::Ident(word))
                }
            }
            other => Err(self.error(format!("expected a property value, found {other:?}"))),
        }
    }

    fn optional_unit(&mut self) -> Option<String> {
        // A unit is a bare identifier immediately following a number, unless
        // it starts a keyword clause (`applies to`, `in modes`).
        if let TokenKind::Ident(word) = self.peek() {
            let lower = word.to_ascii_lowercase();
            if lower != "applies" && lower != "in" {
                let unit = word.clone();
                self.bump();
                return Some(unit);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
-- A two-thread demo package.
package demo
public
  data Buffer
  end Buffer;

  thread sender
  features
    output : out event data port Buffer;
    state : requires data access Buffer;
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Deadline => 4 ms;
    Compute_Execution_Time => 1 ms .. 2 ms;
  end sender;

  thread receiver
  features
    input : in event data port Buffer {Queue_Size => 3;};
  properties
    Dispatch_Protocol => Periodic;
    Period => 6 ms;
  end receiver;

  process node
  end node;

  process implementation node.impl
  subcomponents
    tx : thread sender;
    rx : thread receiver;
    buf : data Buffer;
  connections
    c1 : port tx.output -> rx.input;
    c2 : data access buf <-> tx.state;
  properties
    Priority => 7 applies to tx;
  end node.impl;

  processor cpu
  end cpu;

  system root
  end root;

  system implementation root.impl
  subcomponents
    node1 : process node.impl;
    cpu1 : processor cpu;
  properties
    Actual_Processor_Binding => (reference (cpu1)) applies to node1;
  end root.impl;
end demo;
"#;

    #[test]
    fn parses_full_demo_package() {
        let pkg = parse_package(SMALL).unwrap();
        assert_eq!(pkg.name, "demo");
        assert_eq!(pkg.len(), 8);
        assert!(pkg.classifier("sender").is_some());
        assert!(pkg.classifier("node.impl").is_some());
        assert!(pkg.classifier("root.impl").is_some());
    }

    #[test]
    fn thread_features_and_properties() {
        let pkg = parse_package(SMALL).unwrap();
        let Classifier::ComponentType {
            features,
            properties,
            ..
        } = pkg.classifier("sender").unwrap()
        else {
            panic!("expected component type")
        };
        assert_eq!(features.len(), 2);
        assert_eq!(features[0].name, "output");
        assert_eq!(features[0].direction, PortDirection::Out);
        assert!(matches!(
            features[0].kind,
            FeatureKind::EventDataPort { .. }
        ));
        assert!(matches!(
            features[1].kind,
            FeatureKind::DataAccess {
                provides: false,
                ..
            }
        ));
        assert_eq!(properties.len(), 4);
        assert_eq!(properties[0].name, "Dispatch_Protocol");
        assert_eq!(
            properties[1].value,
            PropertyValue::Integer(4, Some("ms".into()))
        );
        assert!(matches!(properties[3].value, PropertyValue::Range(..)));
    }

    #[test]
    fn feature_curly_properties() {
        let pkg = parse_package(SMALL).unwrap();
        let Classifier::ComponentType { features, .. } = pkg.classifier("receiver").unwrap() else {
            panic!("expected component type")
        };
        assert_eq!(features[0].properties.len(), 1);
        assert_eq!(features[0].properties[0].name, "Queue_Size");
    }

    #[test]
    fn implementation_subcomponents_and_connections() {
        let pkg = parse_package(SMALL).unwrap();
        let Classifier::ComponentImplementation {
            subcomponents,
            connections,
            properties,
            ..
        } = pkg.classifier("node.impl").unwrap()
        else {
            panic!("expected implementation")
        };
        assert_eq!(subcomponents.len(), 3);
        assert_eq!(subcomponents[0].name, "tx");
        assert_eq!(subcomponents[0].category, ComponentCategory::Thread);
        assert_eq!(subcomponents[0].classifier.as_deref(), Some("sender"));
        assert_eq!(connections.len(), 2);
        assert_eq!(connections[0].source.to_string(), "tx.output");
        assert_eq!(connections[0].destination.to_string(), "rx.input");
        assert!(connections[1].bidirectional);
        assert_eq!(properties[0].applies_to, vec![vec!["tx".to_string()]]);
    }

    #[test]
    fn binding_property_reference() {
        let pkg = parse_package(SMALL).unwrap();
        let Classifier::ComponentImplementation { properties, .. } =
            pkg.classifier("root.impl").unwrap()
        else {
            panic!("expected implementation")
        };
        let binding = &properties[0];
        assert_eq!(binding.name, "Actual_Processor_Binding");
        match &binding.value {
            PropertyValue::List(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0], PropertyValue::Reference(vec!["cpu1".into()]));
            }
            other => panic!("expected list of references, got {other:?}"),
        }
        assert_eq!(binding.applies_to, vec![vec!["node1".to_string()]]);
    }

    #[test]
    fn error_on_mismatched_end() {
        let bad = "package p\npublic\nthread a\nend b;\nend p;";
        let err = parse_package(bad).unwrap_err();
        assert!(matches!(err, AadlError::Parse { .. }));
    }

    #[test]
    fn error_reports_line_numbers() {
        let bad = "package p\npublic\nthread a\nfeatures\n  x : banana port;\nend a;\nend p;";
        match parse_package(bad).unwrap_err() {
            AadlError::Parse { line, .. } => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn with_clause_and_qualified_names() {
        let src = "package lib::timing\npublic\nwith Base_Types;\nthread t\nproperties\n  SEI::WCET => 5 ms;\nend t;\nend lib::timing;";
        let pkg = parse_package(src).unwrap();
        assert_eq!(pkg.name, "lib_timing");
        let Classifier::ComponentType { properties, .. } = &pkg.classifiers[0] else {
            panic!()
        };
        assert_eq!(properties[0].name, "WCET");
        assert_eq!(properties[0].qualified_name, "SEI::WCET");
    }

    #[test]
    fn negative_and_real_values() {
        let src =
            "package p\npublic\nthread t\nproperties\n  A => -3;\n  B => 2.5 ms;\nend t;\nend p;";
        let pkg = parse_package(src).unwrap();
        let Classifier::ComponentType { properties, .. } = &pkg.classifiers[0] else {
            panic!()
        };
        assert_eq!(properties[0].value, PropertyValue::Integer(-3, None));
        assert_eq!(
            properties[1].value,
            PropertyValue::Real(2.5, Some("ms".into()))
        );
    }
}
