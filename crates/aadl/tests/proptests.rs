//! Property-based tests of the AADL front end: the synthetic generator
//! always produces parseable, instantiable models whose structure matches
//! the requested parameters, and the property layer round-trips durations.

use aadl::ast::ComponentCategory;
use aadl::properties::{duration_of, Duration, TimeUnit};
use aadl::synth::{generate_instance, generate_source, SyntheticSpec, SYNTHETIC_PERIODS_MS};
use aadl::{parse_package, InstanceModel, PropertyValue};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (1usize..40, 0usize..4, any::<bool>(), any::<bool>()).prop_map(
        |(threads, ports_per_thread, chained, shared_data)| SyntheticSpec {
            threads,
            ports_per_thread,
            chained,
            shared_data,
        },
    )
}

proptest! {
    /// Every generated model parses, instantiates, and has exactly the
    /// requested number of threads with periods from the harmonic set.
    #[test]
    fn synthetic_models_round_trip(spec in spec_strategy()) {
        let source = generate_source(&spec);
        let package = parse_package(&source).expect("generator output must parse");
        let instance = InstanceModel::instantiate(&package, "top.impl").expect("must instantiate");
        let counts = instance.category_counts();
        prop_assert_eq!(counts[&ComponentCategory::Thread], spec.threads);
        prop_assert_eq!(counts.get(&ComponentCategory::Data).copied().unwrap_or(0),
                        usize::from(spec.shared_data));
        let threads = instance.threads().unwrap();
        prop_assert_eq!(threads.len(), spec.threads);
        for thread in &threads {
            let period = thread.timing.period.unwrap().as_millis();
            prop_assert!(SYNTHETIC_PERIODS_MS.contains(&period));
            prop_assert_eq!(thread.features.iter().filter(|f| f.kind.is_port()).count(),
                            spec.ports_per_thread * 2);
        }
        // Connection count is fully determined by the spec.
        let expected_port_conns = if spec.chained && spec.threads > 1 {
            (spec.threads - 1) * spec.ports_per_thread
        } else {
            0
        };
        let expected_access_conns = if spec.shared_data { spec.threads } else { 0 };
        prop_assert_eq!(instance.connections.len(), expected_port_conns + expected_access_conns);
    }

    /// Re-parsing the same source is deterministic.
    #[test]
    fn parsing_is_deterministic(spec in spec_strategy()) {
        let source = generate_source(&spec);
        let first = parse_package(&source).unwrap();
        let second = parse_package(&source).unwrap();
        prop_assert_eq!(first, second);
    }

    /// Binding resolution is stable: the generated process is always bound to
    /// the generated processor, and every thread inherits that binding.
    #[test]
    fn bindings_cover_threads(spec in spec_strategy()) {
        let instance = generate_instance(&spec).unwrap();
        prop_assert_eq!(instance.processor_binding("top.app"), Some("top.cpu0"));
        for thread in instance.threads().unwrap() {
            prop_assert_eq!(instance.processor_binding(&thread.path), Some("top.cpu0"));
        }
    }

    /// Integer durations with explicit units convert exactly.
    #[test]
    fn duration_conversion_round_trips(value in 0i64..1_000_000,
                                       unit in prop::sample::select(vec!["ns", "us", "ms", "sec"])) {
        let pv = PropertyValue::Integer(value, Some(unit.to_string()));
        let duration = duration_of(&pv).unwrap();
        let expected = value as u64 * TimeUnit::parse(unit).unwrap().nanoseconds();
        prop_assert_eq!(duration.as_nanos(), expected);
        prop_assert_eq!(duration, Duration::from_nanos(expected));
    }

    /// Milliseconds accessors truncate consistently.
    #[test]
    fn duration_accessors_are_consistent(nanos in 0u64..10_000_000_000) {
        let d = Duration::from_nanos(nanos);
        prop_assert_eq!(d.as_micros(), nanos / 1_000);
        prop_assert_eq!(d.as_millis(), nanos / 1_000_000);
        prop_assert_eq!(d.is_zero(), nanos == 0);
    }
}
