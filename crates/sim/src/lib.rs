//! Co-simulation of translated polychronous models: a simulation engine on
//! top of the SIGNAL evaluator, VCD trace emission (the demonstration
//! technique cited by the paper) and profiling counters for performance
//! analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod profile;
pub mod vcd;

pub use engine::{SimulationReport, Simulator};
pub use profile::{ProfileReport, SignalProfile};
pub use vcd::write_vcd;
