//! Value Change Dump (VCD) emission from multi-clock traces.
//!
//! The paper demonstrates co-simulation of AADL specifications "using the
//! VCD technique": the simulated signals are dumped in the standard IEEE
//! 1364 VCD format so that any waveform viewer can display the polychronous
//! execution. This module converts a [`Trace`] to VCD text.

use std::fmt::Write as _;

use signal_moc::trace::Trace;
use signal_moc::value::Value;

/// Converts a trace to VCD text.
///
/// Each signal becomes a VCD variable; booleans and events are 1-bit wires
/// (an event is dumped as a one-tick pulse), integers are 64-bit registers,
/// reals use the VCD `real` type, and strings are dumped as `real 0`
/// placeholders (VCD has no string type). One trace instant corresponds to
/// `timescale_ns` nanoseconds.
pub fn write_vcd(trace: &Trace, module: &str, timescale_ns: u64) -> String {
    let signals = trace.signals();
    let mut out = String::new();
    let _ = writeln!(out, "$date polychrony-aadl reproduction $end");
    let _ = writeln!(out, "$version polysim 0.1 $end");
    let _ = writeln!(out, "$timescale {timescale_ns} ns $end");
    let _ = writeln!(out, "$scope module {module} $end");

    // Assign short identifiers.
    let ids: Vec<String> = (0..signals.len()).map(vcd_id).collect();
    for (signal, id) in signals.iter().zip(&ids) {
        let (ty, width) = vcd_type(trace, signal);
        let _ = writeln!(out, "$var {ty} {width} {id} {signal} $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values: everything absent/zero.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for (signal, id) in signals.iter().zip(&ids) {
        let (ty, _) = vcd_type(trace, signal);
        match ty {
            "wire" => {
                let _ = writeln!(out, "0{id}");
            }
            "real" => {
                let _ = writeln!(out, "r0 {id}");
            }
            _ => {
                let _ = writeln!(out, "b0 {id}");
            }
        }
    }
    let _ = writeln!(out, "$end");

    for (t, step) in trace.iter().enumerate() {
        let mut changes = String::new();
        for (signal, id) in signals.iter().zip(&ids) {
            let (ty, _) = vcd_type(trace, signal);
            match step.get(signal) {
                Some(value) => match (ty, value) {
                    ("wire", v) => {
                        let bit = if v.as_bool() { '1' } else { '0' };
                        let _ = writeln!(changes, "{bit}{id}");
                    }
                    ("real", v) => {
                        let _ = writeln!(changes, "r{} {id}", v.as_real().unwrap_or(0.0));
                    }
                    (_, v) => {
                        let bits = v.as_int().unwrap_or(0);
                        let _ = writeln!(changes, "b{bits:b} {id}");
                    }
                },
                // Absent event/boolean signals fall back to 0 so pulses are
                // visible; absent value signals keep their previous value.
                None => {
                    if ty == "wire" {
                        let _ = writeln!(changes, "0{id}");
                    }
                }
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(out, "#{}", t as u64 * timescale_ns);
            out.push_str(&changes);
        }
    }
    let _ = writeln!(out, "#{}", trace.len() as u64 * timescale_ns);
    out
}

fn vcd_id(index: usize) -> String {
    // VCD identifiers use printable ASCII 33..=126.
    let mut id = String::new();
    let mut i = index;
    loop {
        id.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    id
}

fn vcd_type(trace: &Trace, signal: &str) -> (&'static str, usize) {
    // Inspect the first present value to choose a VCD type.
    for step in trace.iter() {
        if let Some(v) = step.get(signal) {
            return match v {
                Value::Event | Value::Bool(_) => ("wire", 1),
                Value::Int(_) => ("reg", 64),
                Value::Real(_) => ("real", 64),
                Value::Text(_) => ("real", 64),
            };
        }
    }
    ("wire", 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::value::Value;

    fn sample_trace() -> Trace {
        let mut tr = Trace::new();
        tr.set(0, "dispatch", Value::Bool(true));
        tr.set(0, "count", Value::Int(1));
        tr.set(1, "dispatch", Value::Bool(false));
        tr.set(2, "dispatch", Value::Bool(true));
        tr.set(2, "count", Value::Int(2));
        tr.set(2, "load", Value::Real(0.5));
        tr
    }

    #[test]
    fn header_declares_all_signals() {
        let vcd = write_vcd(&sample_trace(), "prProdCons", 1_000_000);
        assert!(vcd.contains("$timescale 1000000 ns $end"));
        assert!(vcd.contains("$scope module prProdCons $end"));
        assert!(vcd.contains("$var wire 1 ! dispatch $end") || vcd.contains("dispatch $end"));
        assert!(vcd.contains("count"));
        assert!(vcd.contains("load"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn value_changes_are_dumped_per_instant() {
        let vcd = write_vcd(&sample_trace(), "m", 1);
        // Three time markers plus the final one.
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("#2"));
        assert!(vcd.contains("#3"));
        // Integer dumped in binary.
        assert!(vcd.contains("b10 "));
        // Real dumped with the r prefix.
        assert!(vcd.contains("r0.5 "));
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut tr = Trace::new();
        for i in 0..200 {
            tr.set(0, format!("s{i}"), Value::Bool(true));
        }
        let vcd = write_vcd(&tr, "wide", 1);
        let ids: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        let unique: std::collections::BTreeSet<&&str> = ids.iter().collect();
        assert_eq!(ids.len(), 200);
        assert_eq!(unique.len(), 200);
        assert!(ids
            .iter()
            .all(|id| id.chars().all(|c| ('!'..='~').contains(&c))));
    }

    #[test]
    fn empty_trace_still_produces_valid_header() {
        let vcd = write_vcd(&Trace::new(), "empty", 10);
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.ends_with("#0\n"));
    }
}
