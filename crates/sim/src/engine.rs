//! The simulation engine: repeated execution of a flat SIGNAL process over
//! scheduler-provided timing traces, with alarm monitoring, profiling and
//! VCD export.

use serde::{Deserialize, Serialize};
use signal_moc::error::SignalError;
use signal_moc::eval::Evaluator;
use signal_moc::process::Process;
use signal_moc::trace::Trace;

use crate::profile::ProfileReport;
use crate::vcd::write_vcd;

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of instants executed.
    pub instants: usize,
    /// Number of instants where at least one `*Alarm*` signal was true —
    /// timing-property violations detected during co-simulation.
    pub alarm_instants: usize,
    /// Profiling counters over the produced trace.
    pub profile: ProfileReport,
}

impl SimulationReport {
    /// Returns `true` when no alarm fired during the run.
    pub fn is_alarm_free(&self) -> bool {
        self.alarm_instants == 0
    }
}

/// A simulator for a flat SIGNAL process.
///
/// The simulator owns the evaluator state, so successive calls to
/// [`Simulator::run`] continue the execution (delays keep their values),
/// which is how multiple hyper-periods are chained.
#[derive(Debug, Clone)]
pub struct Simulator {
    evaluator: Evaluator,
    history: Trace,
}

impl Simulator {
    /// Creates a simulator for `process` (which must be flat — see
    /// [`signal_moc::process::ProcessModel::flatten`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction errors (invalid or non-flat
    /// process).
    pub fn new(process: &Process) -> Result<Self, SignalError> {
        Ok(Self {
            evaluator: Evaluator::new(process)?,
            history: Trace::new(),
        })
    }

    /// Runs the process over `inputs`, appending to the simulation history,
    /// and returns the output trace of this run.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (synchronisation violations, type errors,
    /// non-executable instants).
    pub fn run(&mut self, inputs: &Trace) -> Result<Trace, SignalError> {
        let out = self.evaluator.run(inputs)?;
        self.history.extend(out.iter().cloned());
        Ok(out)
    }

    /// The accumulated trace of every run so far.
    pub fn history(&self) -> &Trace {
        &self.history
    }

    /// Resets the evaluator state and clears the history.
    pub fn reset(&mut self) {
        self.evaluator.reset();
        self.history = Trace::new();
    }

    /// Builds a report over the accumulated history.
    pub fn report(&self) -> SimulationReport {
        let alarm_instants = self
            .history
            .iter()
            .filter(|step| {
                step.iter()
                    .any(|(name, value)| name.contains("Alarm") && value.as_bool())
            })
            .count();
        SimulationReport {
            instants: self.history.len(),
            alarm_instants,
            profile: ProfileReport::from_trace(&self.history),
        }
    }

    /// Exports the accumulated history as VCD text (one instant =
    /// `timescale_ns` nanoseconds).
    pub fn to_vcd(&self, module: &str, timescale_ns: u64) -> String {
        write_vcd(&self.history, module, timescale_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::builder::ProcessBuilder;
    use signal_moc::expr::Expr;
    use signal_moc::value::{Value, ValueType};

    fn alarm_counter() -> Process {
        let mut b = ProcessBuilder::new("frame");
        b.input("Dispatch", ValueType::Boolean);
        b.input("Deadline", ValueType::Boolean);
        b.input("Resume", ValueType::Boolean);
        b.output("count", ValueType::Integer);
        b.output("Alarm", ValueType::Boolean);
        b.define(
            "count",
            Expr::default(
                Expr::when(
                    Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
                    Expr::var("Dispatch"),
                ),
                Expr::delay(Expr::var("count"), Value::Int(0)),
            ),
        );
        b.define(
            "Alarm",
            Expr::and(Expr::var("Deadline"), Expr::not(Expr::var("Resume"))),
        );
        b.synchronize(&["Dispatch", "Deadline", "Resume", "count", "Alarm"]);
        b.build().unwrap()
    }

    fn frame(dispatch: bool, deadline: bool, resume: bool) -> signal_moc::trace::TraceStep {
        let mut step = signal_moc::trace::TraceStep::new();
        step.set("Dispatch", Value::Bool(dispatch));
        step.set("Deadline", Value::Bool(deadline));
        step.set("Resume", Value::Bool(resume));
        step
    }

    #[test]
    fn state_persists_across_runs() {
        let mut sim = Simulator::new(&alarm_counter()).unwrap();
        let inputs: Trace = vec![frame(true, false, true), frame(false, true, true)]
            .into_iter()
            .collect();
        sim.run(&inputs).unwrap();
        sim.run(&inputs).unwrap();
        let history = sim.history();
        assert_eq!(history.len(), 4);
        let counts: Vec<i64> = history
            .flow_of("count")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 1, 2, 2]);
    }

    #[test]
    fn report_counts_alarms() {
        let mut sim = Simulator::new(&alarm_counter()).unwrap();
        let inputs: Trace = vec![
            frame(true, false, false),
            frame(false, true, false), // deadline without resume -> alarm
            frame(true, true, true),
        ]
        .into_iter()
        .collect();
        sim.run(&inputs).unwrap();
        let report = sim.report();
        assert_eq!(report.instants, 3);
        assert_eq!(report.alarm_instants, 1);
        assert!(!report.is_alarm_free());
        assert_eq!(report.profile.activations("Dispatch"), 2);
    }

    #[test]
    fn reset_clears_history_and_state() {
        let mut sim = Simulator::new(&alarm_counter()).unwrap();
        let inputs: Trace = vec![frame(true, false, true)].into_iter().collect();
        sim.run(&inputs).unwrap();
        sim.reset();
        assert_eq!(sim.history().len(), 0);
        sim.run(&inputs).unwrap();
        let counts: Vec<i64> = sim
            .history()
            .flow_of("count")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn vcd_export_contains_signals() {
        let mut sim = Simulator::new(&alarm_counter()).unwrap();
        let inputs: Trace = vec![frame(true, false, true), frame(false, true, false)]
            .into_iter()
            .collect();
        sim.run(&inputs).unwrap();
        let vcd = sim.to_vcd("frame", 1_000_000);
        assert!(vcd.contains("$var"));
        assert!(vcd.contains("count"));
        assert!(vcd.contains("Alarm"));
    }
}
