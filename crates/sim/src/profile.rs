//! Profiling of simulated traces: per-signal activity counters and derived
//! performance indicators, the "profiling-based analysis of real-time
//! characteristics" the paper connects to the Polychrony core.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use signal_moc::trace::Trace;

/// Activity profile of one signal over a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalProfile {
    /// Signal name.
    pub name: String,
    /// Number of instants where the signal is present.
    pub presence_count: usize,
    /// Number of instants where the signal is present with a truthy value
    /// (for booleans: `true`; for events: always; for numbers: non-zero).
    pub active_count: usize,
    /// Presence rate relative to the trace length (its activation rate on
    /// the fastest clock).
    pub presence_rate: f64,
    /// Largest integer value observed (useful for FIFO depths and counters).
    pub max_int: Option<i64>,
}

/// Profile of a whole simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Number of instants simulated.
    pub instants: usize,
    /// Per-signal profiles, indexed by name.
    pub signals: BTreeMap<String, SignalProfile>,
}

impl ProfileReport {
    /// Profiles every signal of `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let instants = trace.len();
        let mut signals = BTreeMap::new();
        for name in trace.signals() {
            let mut presence = 0usize;
            let mut active = 0usize;
            let mut max_int = None;
            for step in trace.iter() {
                if let Some(v) = step.get(&name) {
                    presence += 1;
                    if v.as_bool() {
                        active += 1;
                    }
                    if let Some(i) = v.as_int() {
                        max_int = Some(max_int.map_or(i, |m: i64| m.max(i)));
                    }
                }
            }
            signals.insert(
                name.clone(),
                SignalProfile {
                    name,
                    presence_count: presence,
                    active_count: active,
                    presence_rate: if instants == 0 {
                        0.0
                    } else {
                        presence as f64 / instants as f64
                    },
                    max_int,
                },
            );
        }
        Self { instants, signals }
    }

    /// Profile of one signal.
    pub fn signal(&self, name: &str) -> Option<&SignalProfile> {
        self.signals.get(name)
    }

    /// Number of activations (truthy instants) of a signal, 0 if unknown.
    pub fn activations(&self, name: &str) -> usize {
        self.signal(name).map(|s| s.active_count).unwrap_or(0)
    }

    /// Signals whose name ends with the given suffix — convenient to collect
    /// per-thread indicators (`*_Alarm`, `*_Dispatch`, …).
    pub fn signals_with_suffix(&self, suffix: &str) -> Vec<&SignalProfile> {
        self.signals
            .values()
            .filter(|s| s.name.ends_with(suffix))
            .collect()
    }

    /// Renders a compact textual report sorted by activity.
    pub fn to_table(&self, limit: usize) -> String {
        let mut rows: Vec<&SignalProfile> = self.signals.values().collect();
        rows.sort_by(|a, b| {
            b.active_count
                .cmp(&a.active_count)
                .then(a.name.cmp(&b.name))
        });
        let mut out = format!("profile over {} instants\n", self.instants);
        out.push_str("signal                                   present  active  rate\n");
        for row in rows.into_iter().take(limit) {
            out.push_str(&format!(
                "{:<40} {:>7} {:>7} {:>5.2}\n",
                row.name, row.presence_count, row.active_count, row.presence_rate
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_moc::value::Value;

    fn trace() -> Trace {
        let mut tr = Trace::new();
        for t in 0..10usize {
            tr.set(t, "Dispatch", Value::Bool(t % 2 == 0));
            if t % 3 == 0 {
                tr.set(t, "depth", Value::Int(t as i64));
            }
        }
        tr
    }

    #[test]
    fn counts_and_rates() {
        let report = ProfileReport::from_trace(&trace());
        assert_eq!(report.instants, 10);
        let dispatch = report.signal("Dispatch").unwrap();
        assert_eq!(dispatch.presence_count, 10);
        assert_eq!(dispatch.active_count, 5);
        assert!((dispatch.presence_rate - 1.0).abs() < 1e-9);
        let depth = report.signal("depth").unwrap();
        assert_eq!(depth.presence_count, 4);
        assert_eq!(depth.max_int, Some(9));
        assert_eq!(report.activations("Dispatch"), 5);
        assert_eq!(report.activations("missing"), 0);
    }

    #[test]
    fn suffix_query_and_table() {
        let report = ProfileReport::from_trace(&trace());
        assert_eq!(report.signals_with_suffix("Dispatch").len(), 1);
        let table = report.to_table(10);
        assert!(table.contains("Dispatch"));
        assert!(table.contains("profile over 10 instants"));
    }

    #[test]
    fn empty_trace_profile() {
        let report = ProfileReport::from_trace(&Trace::new());
        assert_eq!(report.instants, 0);
        assert!(report.signals.is_empty());
    }
}
